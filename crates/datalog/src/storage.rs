//! Flat columnar storage for the fixpoint engine.
//!
//! The evaluator's hot loop touches three structures, all allocation-free
//! per tuple:
//!
//! - [`ColumnarRelation`] — a predicate's extension as one flat
//!   `Vec<Const>` with an arity stride. A tuple is a **row**: a `&[Const]`
//!   slice into the column store, identified by a dense `u32` row id in
//!   insertion order. An open-addressing row table (keyed with the
//!   in-tree [`crate::hash::FxHasher`]) deduplicates rows on insert.
//! - [`IncrementalIndex`] — a persistent hash index over one relation and
//!   one column **mask** (the bound argument positions of a join step).
//!   Rows with equal key are chained through a flat `next` array,
//!   newest-first; extending the index with freshly appended rows is
//!   incremental, so semi-naive iterations never rebuild an index.
//! - watermarks — because relations are append-only, the semi-naive
//!   snapshots `old ⊆ full` and the per-iteration `delta` are just row
//!   ranges: `old = [0, old_hi)`, `delta = [old_hi, len)`, `full =
//!   [0, len)`. No cloning, no separate set/vec duplication.
//!
//! The newest-first chain invariant is what makes one index serve all
//! three snapshots: a chain's row ids are strictly decreasing, so a
//! traversal takes the `delta` rows as a prefix and the `old` rows as the
//! remaining suffix.
//!
//! # Cache behaviour
//!
//! Two layout refinements keep the probe loop out of cache trouble
//! without changing what it enumerates:
//!
//! - **Frozen posting segments** — the cold (long-since-indexed) portion
//!   of each key's chain is periodically folded into one contiguous,
//!   descending run of row ids in a shared pool ([`IncrementalIndex`]
//!   freezes when the hot chains outgrow the frozen store, so total
//!   rebuild work stays O(rows)). A probe walks the short hot chain and
//!   then scans its segment linearly — same rows, same order, no
//!   pointer-chasing through the cold store. Snapshot bounds clip the
//!   segment by binary search instead of walking past it row by row.
//! - **Single-key fast path** — an index whose mask has exactly one
//!   column stores raw key values in its key table: probes hash one
//!   `u32` and compare one `u32`, never re-materializing per-row key
//!   slices. The hash is bit-identical to the general path's, so the
//!   two key-table layouts are interchangeable.
//!
//! Both traversal shapes hide behind the [`Posting`] cursor, so the join
//! machinery is layout-independent; the chains-only layout remains
//! available (`IncrementalIndex::set_segmented`) as the A/B baseline.

use crate::ast::Const;
use crate::hash::{hash_ids, FxHashMap};

/// Sentinel row id: "no row" / end of an index chain.
pub const NO_ROW: u32 = u32::MAX;

/// Dedup-table sentinel for a slot whose row was tombstoned. Probes
/// continue past it (the slot may sit mid-chain); inserts may reuse it.
/// Never a valid row id ([`ColumnarRelation::insert`] asserts ids stay
/// below it).
const TOMB_SLOT: u32 = u32::MAX - 1;

/// Partitions the row range `[lo, hi)` into `shards` contiguous
/// subranges for the parallel evaluator, returned **top-down**: the
/// first subrange covers the newest (highest-id) rows. Subrange sizes
/// differ by at most one; when the range has fewer rows than `shards`,
/// the trailing subranges are empty.
///
/// Top-down order matters for determinism: index chains are traversed
/// newest-first, so concatenating per-shard results in this order
/// reproduces the sequential engine's enumeration order whenever the
/// sharded (delta) step is the first step of a join.
pub fn shard_ranges(lo: usize, hi: usize, shards: usize) -> Vec<(usize, usize)> {
    assert!(shards >= 1, "need at least one shard");
    assert!(lo <= hi, "inverted row range");
    let n = hi - lo;
    let base = n / shards;
    let extra = n % shards;
    let mut out = Vec::with_capacity(shards);
    let mut top = hi;
    for s in 0..shards {
        let size = base + usize::from(s < extra);
        out.push((top - size, top));
        top -= size;
    }
    debug_assert_eq!(top, lo);
    out
}

/// A relation stored as one flat column-major-free `Vec<Const>` with an
/// arity stride, plus a row-id hash table for O(1) dedup and membership.
///
/// Equality compares the full insertion-ordered contents (row ids
/// included), which is what the provenance determinism tests assert.
///
/// # Tombstones
///
/// Rows can be **tombstoned** ([`ColumnarRelation::tombstone`]) for the
/// incremental maintenance layer's delete–rederive: the row's data stays
/// in place (row ids never shift — index chains and recorded
/// justifications keep referencing them), but it leaves the dedup table
/// (`contains`/`find_row` report it absent; re-inserting the same tuple
/// appends a **new** row id) and [`ColumnarRelation::is_live`] turns
/// false, which the join machinery checks before matching a row.
///
/// # Epoch-tagged tombstones (snapshot reads)
///
/// The serving layer ([`crate::server`]) needs point-in-time reads while
/// the writer keeps mutating. Append-only row ids make the *insert* side
/// of a snapshot free — a per-relation row-count frontier bounds what a
/// reader may see — but tombstones mutate in place. So a relation can be
/// moved into **epoch mode** ([`ColumnarRelation::set_epoch`] with a
/// nonzero epoch): from then on each tombstone records the epoch it died
/// in, and [`ColumnarRelation::visible_at`] resurrects rows that died
/// *after* a reader's pinned epoch. Relations that never enter epoch mode
/// (every plain [`crate::materialize::Materialization`]) pay nothing: the
/// side table stays empty and untouched.
///
/// Reclamation is compaction-free: once no reader is pinned below epoch
/// `e`, [`ColumnarRelation::reclaim_tombstones`] drops the tags `<= e` —
/// an untagged dead row is simply dead at every pinnable epoch.
#[derive(Clone, Debug, Default)]
pub struct ColumnarRelation {
    arity: usize,
    /// Row-major tuple data: row `r` occupies `data[r*arity .. (r+1)*arity]`.
    data: Vec<Const>,
    /// Number of rows (kept explicitly so 0-ary relations work).
    rows: usize,
    /// Open-addressing dedup table over row ids (capacity is a power of
    /// two; `NO_ROW` marks an empty slot, [`TOMB_SLOT`] a deleted one).
    slots: Vec<u32>,
    /// Restore fast path: the dedup table is **write-path** state (only
    /// insert/retract/merge probe it — reads go through the rows and
    /// the join indexes), so [`ColumnarRelation::from_persist`] defers
    /// its O(rows) rebuild until the first mutating touch instead of
    /// charging it to every restart. While stale, `slots` is empty and
    /// must not be consulted; the mutating entry points rebuild first.
    slots_stale: bool,
    /// Tombstone bitset, allocated lazily on the first
    /// [`ColumnarRelation::tombstone`]; empty means every row is live.
    dead: Vec<u64>,
    /// Number of tombstoned rows.
    dead_rows: usize,
    /// The epoch new tombstones are tagged with; 0 = epoch mode off.
    epoch: u64,
    /// Death epoch per tombstoned row, populated only in epoch mode. A
    /// dead row absent from this table died "before memory": invisible
    /// at every epoch still pinnable.
    tomb_at: FxHashMap<u32, u64>,
}

/// Semantic equality: compares the rows, tombstones and epoch tags, but
/// **not** the dedup table's slot layout. The slot layout is
/// probe-history dependent — the same reason [`crate::persist`] rebuilds
/// it on restore instead of serializing it: pre-sizing the table for a
/// batched merge can leave a different capacity than one-at-a-time
/// growth without changing any observable row id, enumeration order or
/// justification.
impl PartialEq for ColumnarRelation {
    fn eq(&self, other: &Self) -> bool {
        self.arity == other.arity
            && self.data == other.data
            && self.rows == other.rows
            && self.dead == other.dead
            && self.dead_rows == other.dead_rows
            && self.epoch == other.epoch
            && self.tomb_at == other.tomb_at
    }
}

impl Eq for ColumnarRelation {}

impl ColumnarRelation {
    /// Creates an empty relation of the given arity.
    pub fn new(arity: usize) -> Self {
        Self {
            arity,
            data: Vec::new(),
            rows: 0,
            slots: Vec::new(),
            slots_stale: false,
            dead: Vec::new(),
            dead_rows: 0,
            epoch: 0,
            tomb_at: FxHashMap::default(),
        }
    }

    /// The arity (row stride).
    #[inline]
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of rows.
    #[inline]
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// The flat tuple data (`num_rows() * arity()` constants).
    #[inline]
    pub fn data(&self) -> &[Const] {
        &self.data
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[Const] {
        &self.data[r * self.arity..r * self.arity + self.arity]
    }

    /// The value at row `r`, column `col`.
    #[inline]
    pub fn value(&self, r: usize, col: usize) -> Const {
        self.data[r * self.arity + col]
    }

    /// Number of live (non-tombstoned) rows.
    #[inline]
    pub fn num_live(&self) -> usize {
        self.rows - self.dead_rows
    }

    /// Whether row `r` is live (not tombstoned). Cheap: one bounds check
    /// when the relation has never been tombstoned (the bitset is empty,
    /// and rows appended after a tombstone may also lie past its end).
    #[inline]
    pub fn is_live(&self, r: usize) -> bool {
        match self.dead.get(r >> 6) {
            None => true,
            Some(w) => (w >> (r & 63)) & 1 == 0,
        }
    }

    /// Iterates over the **live** rows in insertion order.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[Const]> {
        (0..self.rows)
            .filter(move |&r| self.is_live(r))
            .map(move |r| self.row(r))
    }

    /// Enters (or advances) epoch mode: tombstones created from now on
    /// are tagged with `epoch`, so [`ColumnarRelation::visible_at`] can
    /// serve reads pinned at earlier epochs. Epochs must be nonzero and
    /// non-decreasing across calls (the serving layer's round counter).
    pub fn set_epoch(&mut self, epoch: u64) {
        debug_assert!(epoch >= self.epoch, "epochs never go backwards");
        self.epoch = epoch;
    }

    /// Whether row `r` is visible to a reader pinned at `epoch`: live, or
    /// tombstoned in a *later* epoch (the reader pinned before the row
    /// died). Rows at ids `>= frontier` of the reader's pinned snapshot
    /// must be excluded by the caller — this checks liveness only.
    #[inline]
    pub fn visible_at(&self, r: usize, epoch: u64) -> bool {
        self.is_live(r) || self.tomb_at.get(&(r as u32)).is_some_and(|&te| te > epoch)
    }

    /// Iterates the rows of the pinned snapshot `(frontier, epoch)`:
    /// row ids below `frontier` (the relation's row count when the
    /// snapshot was pinned) that are visible at `epoch`, in insertion
    /// order.
    pub fn rows_iter_at(&self, frontier: usize, epoch: u64) -> impl Iterator<Item = &[Const]> {
        (0..frontier.min(self.rows))
            .filter(move |&r| self.visible_at(r, epoch))
            .map(move |r| self.row(r))
    }

    /// Drops the death-epoch tags `<= min_epoch` (no reader is pinned at
    /// or below it any more): the rows stay dead, just untagged — dead at
    /// every epoch still pinnable. Compaction-free reclamation.
    pub fn reclaim_tombstones(&mut self, min_epoch: u64) {
        self.tomb_at.retain(|_, te| *te > min_epoch);
    }

    fn hash_row_slice(row: &[Const]) -> u64 {
        hash_ids(row.iter().map(|c| c.0))
    }

    /// The dedup hash of a tuple — the one [`ColumnarRelation::insert`]
    /// probes with. Callers that test membership first and insert later
    /// compute it **once** and pass it to the `_hashed` variants,
    /// eliminating the find-then-insert double hash on the staged-merge
    /// path.
    #[inline]
    pub(crate) fn hash_row(row: &[Const]) -> u64 {
        Self::hash_row_slice(row)
    }

    /// Membership test (O(1) expected).
    pub fn contains(&self, row: &[Const]) -> bool {
        self.find_row(row) != NO_ROW
    }

    /// [`ColumnarRelation::contains`] with a memoized
    /// [`ColumnarRelation::hash_row`] hash.
    #[inline]
    pub(crate) fn contains_hashed(&self, row: &[Const], hash: u64) -> bool {
        self.find_row_hashed(row, hash) != NO_ROW
    }

    /// The row id of a tuple, or [`NO_ROW`] if absent (O(1) expected).
    /// Row ids are dense and stable: the provenance subsystem uses them
    /// as node identities of the justification DAG.
    pub fn find_row(&self, row: &[Const]) -> u32 {
        self.find_row_hashed(row, Self::hash_row_slice(row))
    }

    fn find_row_hashed(&self, row: &[Const], hash: u64) -> u32 {
        debug_assert_eq!(row.len(), self.arity);
        debug_assert!(
            !self.slots_stale,
            "dedup probe on a freshly restored relation: a mutating entry \
             point skipped Materialization::ensure_dedup"
        );
        if self.slots.is_empty() {
            return NO_ROW;
        }
        let mask = self.slots.len() - 1;
        let mut i = (hash as usize) & mask;
        loop {
            let s = self.slots[i];
            if s == NO_ROW {
                return NO_ROW;
            }
            if s != TOMB_SLOT && self.row(s as usize) == row {
                return s;
            }
            i = (i + 1) & mask;
        }
    }

    /// Pre-sizes the dedup table for `additional` upcoming inserts, so a
    /// batched merge never rehashes mid-flight. Growth stays geometric —
    /// the table never shrinks, and per-insert growth remains as the
    /// backstop for callers that skip the reservation.
    pub(crate) fn reserve_rows(&mut self, additional: usize) {
        self.ensure_slots();
        let want = self.rows + additional;
        if (want + 1) * 2 > self.slots.len() {
            let mut cap = self.slots.len().max(8);
            while (want + 1) * 2 > cap {
                cap *= 2;
            }
            self.grow_to(cap);
        }
    }

    /// Appends a row if it is not already present **and live**; returns
    /// whether it was new. Row ids are dense and assigned in insertion
    /// order; re-inserting a tombstoned tuple appends a fresh row id
    /// (the dead row stays dead).
    pub fn insert(&mut self, row: &[Const]) -> bool {
        self.insert_hashed(row, Self::hash_row_slice(row))
    }

    /// [`ColumnarRelation::insert`] with a memoized
    /// [`ColumnarRelation::hash_row`] hash.
    pub(crate) fn insert_hashed(&mut self, row: &[Const], hash: u64) -> bool {
        assert_eq!(row.len(), self.arity, "tuple arity mismatch");
        self.ensure_slots();
        if (self.rows + 1) * 2 > self.slots.len() {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut i = (hash as usize) & mask;
        // First reusable (tombstoned) slot on the probe path, if any.
        let mut reuse: Option<usize> = None;
        loop {
            let s = self.slots[i];
            if s == NO_ROW {
                let id = u32::try_from(self.rows).expect("relation row-id overflow");
                assert!(id < TOMB_SLOT, "relation row-id overflow");
                self.slots[reuse.unwrap_or(i)] = id;
                self.data.extend_from_slice(row);
                self.rows += 1;
                return true;
            }
            if s == TOMB_SLOT {
                reuse.get_or_insert(i);
            } else if self.row(s as usize) == row {
                return false;
            }
            i = (i + 1) & mask;
        }
    }

    /// Tombstones a live row: removes it from the dedup table and marks
    /// it dead. Returns whether the row was live. The row data and id
    /// stay in place — index chains and recorded justifications keep
    /// addressing it; only [`ColumnarRelation::is_live`] flips.
    pub fn tombstone(&mut self, r: usize) -> bool {
        assert!(r < self.rows, "tombstone of nonexistent row");
        if !self.is_live(r) {
            return false;
        }
        self.ensure_slots();
        if self.dead.is_empty() {
            self.dead = vec![0; self.rows.div_ceil(64)];
        } else if self.dead.len() < self.rows.div_ceil(64) {
            self.dead.resize(self.rows.div_ceil(64), 0);
        }
        self.dead[r >> 6] |= 1 << (r & 63);
        self.dead_rows += 1;
        if self.epoch > 0 {
            self.tomb_at.insert(r as u32, self.epoch);
        }
        // Unlink from the dedup table (the slot may sit mid-probe-chain,
        // so it becomes TOMB_SLOT, not NO_ROW).
        let mask = self.slots.len() - 1;
        let mut i = (Self::hash_row_slice(self.row(r)) as usize) & mask;
        loop {
            let s = self.slots[i];
            debug_assert_ne!(s, NO_ROW, "live row must be in the dedup table");
            if s == r as u32 {
                self.slots[i] = TOMB_SLOT;
                return true;
            }
            i = (i + 1) & mask;
        }
    }

    fn grow(&mut self) {
        self.grow_to((self.slots.len() * 2).max(8));
    }

    fn grow_to(&mut self, cap: usize) {
        debug_assert!(cap.is_power_of_two());
        self.slots = vec![NO_ROW; cap];
        let mask = cap - 1;
        for r in 0..self.rows {
            if !self.is_live(r) {
                continue; // tombstoned rows stay out of the dedup table
            }
            let mut i = (Self::hash_row_slice(self.row(r)) as usize) & mask;
            while self.slots[i] != NO_ROW {
                i = (i + 1) & mask;
            }
            self.slots[i] = r as u32;
        }
    }

    /// Rebuilds the dedup table from scratch over the live rows, sized
    /// for the current row count (used after compaction and on the first
    /// write after restore — the probe-history-dependent slot layout is
    /// not serialized).
    fn rebuild_slots(&mut self) {
        self.slots_stale = false;
        if self.rows == 0 {
            self.slots = Vec::new();
            return;
        }
        let mut cap = 8usize;
        while (self.rows + 1) * 2 > cap {
            cap *= 2;
        }
        self.slots = vec![NO_ROW; cap];
        let mask = cap - 1;
        for r in 0..self.rows {
            if !self.is_live(r) {
                continue;
            }
            let mut i = (Self::hash_row_slice(self.row(r)) as usize) & mask;
            while self.slots[i] != NO_ROW {
                i = (i + 1) & mask;
            }
            self.slots[i] = r as u32;
        }
    }

    /// Number of tombstoned rows.
    #[inline]
    pub fn num_dead(&self) -> usize {
        self.dead_rows
    }

    /// **Compacts** the relation: drops every tombstoned row, renumbers
    /// the survivors densely in their original order, and rebuilds the
    /// dedup table. Returns the old→new row-id map (`remap[old]`, with
    /// [`NO_ROW`] for dropped rows); callers must remap every structure
    /// that addresses rows by id (index chains, recorded justifications).
    ///
    /// Epoch tags are cleared: compaction is only legal when no reader
    /// is pinned below the current epoch (the serving layer defers it
    /// until the last unpin), at which point every tag is unobservable.
    /// The epoch itself is preserved.
    pub fn compact(&mut self) -> Vec<u32> {
        let mut remap = vec![NO_ROW; self.rows];
        let mut data = Vec::with_capacity((self.rows - self.dead_rows) * self.arity.max(1));
        let mut next = 0u32;
        for (r, slot) in remap.iter_mut().enumerate() {
            if self.is_live(r) {
                *slot = next;
                data.extend_from_slice(self.row(r));
                next += 1;
            }
        }
        self.data = data;
        self.rows = next as usize;
        self.dead = Vec::new();
        self.dead_rows = 0;
        self.tomb_at = FxHashMap::default();
        self.rebuild_slots();
        remap
    }

    // -----------------------------------------------------------------
    // Serialization support (crate::persist)
    // -----------------------------------------------------------------

    /// The tombstone bitset words (may be shorter than `rows/64`; missing
    /// words mean live).
    pub(crate) fn dead_words(&self) -> &[u64] {
        &self.dead
    }

    /// The epoch new tombstones are tagged with (0 = epoch mode off).
    pub(crate) fn current_epoch(&self) -> u64 {
        self.epoch
    }

    /// The death-epoch tags still held (serving-layer metadata).
    pub(crate) fn tomb_tags(&self) -> &FxHashMap<u32, u64> {
        &self.tomb_at
    }

    /// Reassembles a relation from its serialized parts. The dedup table
    /// (slot layout is probe-history dependent and is not persisted) is
    /// **not** rebuilt here: it is write-path state, so the rebuild is
    /// deferred to the first mutating touch
    /// ([`ColumnarRelation::ensure_slots`]) — a restored store that only
    /// serves reads never pays the O(rows) rehash. `dead_rows` must
    /// equal the popcount of `dead`.
    pub(crate) fn from_persist(
        arity: usize,
        data: Vec<Const>,
        rows: usize,
        dead: Vec<u64>,
        dead_rows: usize,
        epoch: u64,
        tomb_at: FxHashMap<u32, u64>,
    ) -> Self {
        Self {
            arity,
            data,
            rows,
            slots: Vec::new(),
            slots_stale: rows > 0,
            dead,
            dead_rows,
            epoch,
            tomb_at,
        }
    }

    /// Rebuilds the dedup table if a restore left it stale. Cheap when
    /// fresh (one branch); the mutating entry points of
    /// [`crate::materialize::Materialization`] call it before any code
    /// path can probe the table.
    pub(crate) fn ensure_slots(&mut self) {
        if self.slots_stale {
            self.rebuild_slots();
        }
    }
}

/// Sentinel key-record id: "no key" in an index's key table.
const NO_KEY: u32 = u32::MAX;

/// Hot-chain size that triggers a freeze, and the floor under which an
/// index never bothers building segments. Freezing when the hot chains
/// outgrow `max(SEG_MIN_HOT, frozen)` means the frozen store at least
/// doubles per freeze, so total freeze work is O(rows) over any insert
/// history.
const SEG_MIN_HOT: usize = 64;

/// Per-key record of an [`IncrementalIndex`]: the hot chain head plus
/// the key's frozen posting segment.
#[derive(Clone, Copy, Debug)]
struct KeyRec {
    /// Single-column index: the raw key value. Otherwise: a
    /// representative row id whose mask projection is the key (row data
    /// never moves between resets, so any row with the key works).
    key: u32,
    /// Newest hot row of the chain; [`NO_ROW`] when fully frozen.
    head: u32,
    /// Frozen segment `pool[seg_off .. seg_off + seg_len]`: this key's
    /// cold row ids, strictly descending.
    seg_off: u32,
    seg_len: u32,
}

/// A traversal cursor over one key's posting list, bounded to a snapshot
/// row range `[lo, hi)`: first the hot chain (newest-first), then the
/// frozen segment (descending, pre-clipped by binary search). Row ids
/// come out strictly decreasing — exactly the order the chains-only
/// layout enumerates. Obtain via [`IncrementalIndex::probe_range`],
/// advance with [`IncrementalIndex::next_match`].
#[derive(Clone, Copy, Debug)]
pub struct Posting {
    /// Current hot-chain row; [`NO_ROW`] once the chain is done.
    chain: u32,
    /// Snapshot lower bound — a chain row below it ends the chain walk.
    lo: u32,
    /// Frozen-segment cursor and end (pool positions, already clipped).
    seg: u32,
    seg_end: u32,
}

impl Posting {
    const EMPTY: Posting = Posting { chain: NO_ROW, lo: 0, seg: 0, seg_end: 0 };
}

/// A persistent hash index over one [`ColumnarRelation`] and one column
/// mask, extended incrementally as the relation grows.
///
/// Recently indexed rows with equal key form a chain through `next`,
/// **newest-first** (strictly decreasing row ids). Cold rows live in
/// frozen posting segments: contiguous descending runs in one shared
/// `pool`, scanned linearly after the chain (see the module docs). The
/// two stores never overlap — rows `[0, frozen)` are segmented, rows
/// `[frozen, watermark)` are chained — and a chain row id is always
/// greater than every segment row id of its key, so the concatenated
/// traversal preserves the global descending order.
#[derive(Clone, Debug)]
pub struct IncrementalIndex {
    /// The relation this index belongs to (an id into the engine's dense
    /// relation table; opaque to this module).
    rel: usize,
    mask: Box<[usize]>,
    /// Open-addressing key table: an id into `krecs` per distinct key.
    slots: Vec<u32>,
    /// One record per distinct key.
    krecs: Vec<KeyRec>,
    /// Hot chains: `next[r - frozen]` = next-older hot row with the same
    /// key, [`NO_ROW`] at chain end (the key's remaining rows, if any,
    /// are in its segment).
    next: Vec<u32>,
    /// Frozen posting pool (see [`KeyRec::seg_off`]).
    pool: Vec<u32>,
    /// Rows `[0, frozen)` are segmented; `[frozen, watermark)` chained.
    frozen: usize,
    /// Rows `[0, watermark)` are indexed.
    watermark: usize,
    /// Layout switch: `false` keeps every row chained forever (the
    /// pre-segment layout, kept as the A/B baseline).
    segmented: bool,
    /// `mask.len() == 1` **and** the cache-conscious layout is on:
    /// key-table entries hold raw key values instead of representative
    /// rows. Gated with `segmented` so the A/B baseline is the
    /// pre-segment engine's storage, bit for bit.
    single: bool,
}

impl IncrementalIndex {
    /// Creates an empty index for relation id `rel` over `mask`.
    pub fn new(rel: usize, mask: Vec<usize>) -> Self {
        let single = mask.len() == 1;
        Self {
            rel,
            mask: mask.into_boxed_slice(),
            slots: Vec::new(),
            krecs: Vec::new(),
            next: Vec::new(),
            pool: Vec::new(),
            frozen: 0,
            watermark: 0,
            segmented: true,
            single,
        }
    }

    /// The relation id this index covers.
    #[inline]
    pub fn rel(&self) -> usize {
        self.rel
    }

    /// Re-targets the index at a different relation id without touching
    /// its contents. Used when an index object is swapped between two
    /// engines that share the underlying relation but number it
    /// differently (the query cache's external-relation swap); the rows
    /// it describes must be the same on both sides.
    pub(crate) fn set_rel(&mut self, rel: usize) {
        self.rel = rel;
    }

    /// Selects the storage layout: segmented (default) or chains-only
    /// (the A/B baseline the `record` storage group and the layout
    /// proptests compare against). Must be called before any rows are
    /// indexed — the layouts enumerate identically but are not
    /// convertible in place.
    pub(crate) fn set_segmented(&mut self, on: bool) {
        if self.segmented != on {
            assert_eq!(self.watermark, 0, "index layout is fixed once rows are indexed");
            self.segmented = on;
            // The raw-value key table is part of the cache-conscious
            // layout; the A/B baseline keys every table by
            // representative rows, as the pre-segment engine did.
            self.single = self.mask.len() == 1 && on;
        }
    }

    /// Whether this index folds cold chains into posting segments.
    #[inline]
    pub(crate) fn is_segmented(&self) -> bool {
        self.segmented
    }

    /// The indexed column positions.
    #[inline]
    pub fn mask(&self) -> &[usize] {
        &self.mask
    }

    /// How many rows are indexed.
    #[inline]
    pub fn watermark(&self) -> usize {
        self.watermark
    }

    /// Number of distinct keys in the index. With
    /// [`IncrementalIndex::watermark`], this is the planner's
    /// selectivity surface: `watermark / num_keys` is the mean join
    /// chain length a probe of this index walks.
    #[inline]
    pub fn num_keys(&self) -> usize {
        self.krecs.len()
    }

    /// The hash of a single-column key value — identical to
    /// [`hash_ids`] over the one-element projection, so the single-key
    /// and general key tables hash compatibly.
    #[inline]
    fn hash1(v: u32) -> u64 {
        hash_ids([v])
    }

    fn key_hash(&self, rel: &ColumnarRelation, r: usize) -> u64 {
        hash_ids(self.mask.iter().map(|&p| rel.value(r, p).0))
    }

    fn keys_equal(&self, rel: &ColumnarRelation, a: usize, b: usize) -> bool {
        self.mask.iter().all(|&p| rel.value(a, p) == rel.value(b, p))
    }

    /// Indexes the rows appended to `rel` since the last call (the delta
    /// `[watermark, num_rows)`). The caller must always pass the same
    /// relation. May freeze outgrown hot chains into segments — probes
    /// are unaffected (same rows, same order).
    pub fn extend(&mut self, rel: &ColumnarRelation) {
        let upto = rel.num_rows();
        if upto == self.watermark {
            return;
        }
        self.next.resize(upto - self.frozen, NO_ROW);
        for r in self.watermark..upto {
            if (self.krecs.len() + 1) * 2 > self.slots.len() {
                self.grow(rel);
            }
            self.add_row(rel, r);
        }
        self.watermark = upto;
        if self.segmented && self.watermark - self.frozen >= SEG_MIN_HOT.max(self.frozen) {
            self.freeze();
        }
    }

    fn add_row(&mut self, rel: &ColumnarRelation, r: usize) {
        let m = self.slots.len() - 1;
        if self.single {
            let v = rel.value(r, self.mask[0]).0;
            let mut i = (Self::hash1(v) as usize) & m;
            loop {
                let id = self.slots[i];
                if id == NO_KEY {
                    self.slots[i] = self.krecs.len() as u32;
                    self.krecs.push(KeyRec { key: v, head: r as u32, seg_off: 0, seg_len: 0 });
                    return;
                }
                let krec = &mut self.krecs[id as usize];
                if krec.key == v {
                    // newest-first chaining keeps row ids strictly decreasing
                    self.next[r - self.frozen] = krec.head;
                    krec.head = r as u32;
                    return;
                }
                i = (i + 1) & m;
            }
        }
        let mut i = (self.key_hash(rel, r) as usize) & m;
        loop {
            let id = self.slots[i];
            if id == NO_KEY {
                self.slots[i] = self.krecs.len() as u32;
                self.krecs.push(KeyRec { key: r as u32, head: r as u32, seg_off: 0, seg_len: 0 });
                return;
            }
            if self.keys_equal(rel, self.krecs[id as usize].key as usize, r) {
                let krec = &mut self.krecs[id as usize];
                self.next[r - self.frozen] = krec.head;
                krec.head = r as u32;
                return;
            }
            i = (i + 1) & m;
        }
    }

    /// Rebuilds the key table at double capacity from the key records —
    /// O(keys), independent of row count.
    fn grow(&mut self, rel: &ColumnarRelation) {
        let cap = (self.slots.len() * 2).max(8);
        self.slots = vec![NO_KEY; cap];
        let m = cap - 1;
        for (id, krec) in self.krecs.iter().enumerate() {
            let h = if self.single {
                Self::hash1(krec.key)
            } else {
                self.key_hash(rel, krec.key as usize)
            };
            let mut i = (h as usize) & m;
            while self.slots[i] != NO_KEY {
                i = (i + 1) & m;
            }
            self.slots[i] = id as u32;
        }
    }

    /// Folds every hot chain into its key's frozen segment. The chain's
    /// rows (all `>= frozen`) are newer than the old segment's (all
    /// `< frozen`), so chain-then-old-segment concatenation preserves
    /// the strictly-descending per-key order exactly.
    fn freeze(&mut self) {
        let old = std::mem::take(&mut self.pool);
        let mut pool = Vec::with_capacity(self.watermark);
        for krec in &mut self.krecs {
            let off = pool.len() as u32;
            let mut r = krec.head;
            while r != NO_ROW {
                pool.push(r);
                r = self.next[r as usize - self.frozen];
            }
            let s = krec.seg_off as usize;
            pool.extend_from_slice(&old[s..s + krec.seg_len as usize]);
            krec.seg_off = off;
            krec.seg_len = pool.len() as u32 - off;
            krec.head = NO_ROW;
        }
        self.pool = pool;
        self.next.clear();
        self.frozen = self.watermark;
    }

    /// The posting cursor of a found key record, clipped to `[lo, hi)`.
    fn posting(&self, krec: &KeyRec, lo: usize, hi: usize) -> Posting {
        let mut chain = krec.head;
        while chain != NO_ROW && chain as usize >= hi {
            chain = self.next[chain as usize - self.frozen];
        }
        let seg = &self.pool[krec.seg_off as usize..(krec.seg_off + krec.seg_len) as usize];
        // Descending ids: binary-search the window bounds instead of
        // scanning past out-of-snapshot rows. Every segment row is
        // `< frozen`, so full-range probes (the steady state of a
        // frozen EDB index) skip both searches outright.
        let start = if hi >= self.frozen { 0 } else { seg.partition_point(|&r| r as usize >= hi) };
        let end = if lo == 0 { seg.len() } else { seg.partition_point(|&r| r as usize >= lo) };
        Posting {
            chain,
            lo: lo.min(self.watermark) as u32,
            seg: krec.seg_off + start as u32,
            seg_end: krec.seg_off + end as u32,
        }
    }

    /// Looks up a key (values in mask order) and returns a cursor over
    /// its rows within the snapshot range `[lo, hi)`, newest first.
    /// Advance with [`IncrementalIndex::next_match`]. No allocation.
    pub fn probe_range(&self, rel: &ColumnarRelation, key: &[Const], lo: usize, hi: usize) -> Posting {
        debug_assert_eq!(key.len(), self.mask.len());
        if self.single {
            return self.probe1_range(rel, key[0], lo, hi);
        }
        if self.slots.is_empty() {
            return Posting::EMPTY;
        }
        let m = self.slots.len() - 1;
        let mut i = (hash_ids(key.iter().map(|c| c.0)) as usize) & m;
        loop {
            let id = self.slots[i];
            if id == NO_KEY {
                return Posting::EMPTY;
            }
            let krec = &self.krecs[id as usize];
            let rep = krec.key as usize;
            if self.mask.iter().zip(key).all(|(&p, &k)| rel.value(rep, p) == k) {
                return self.posting(krec, lo, hi);
            }
            i = (i + 1) & m;
        }
    }

    /// The single-column fast path of [`IncrementalIndex::probe_range`]:
    /// hashes and compares one raw key value, with no key slice and no
    /// relation access. Only valid when `mask().len() == 1`; under the
    /// chains-only A/B baseline (no raw-value key table) it falls back
    /// to the general representative-row probe.
    pub fn probe1_range(&self, rel: &ColumnarRelation, key: Const, lo: usize, hi: usize) -> Posting {
        debug_assert_eq!(self.mask.len(), 1, "probe1_range requires a single-column mask");
        if !self.single {
            return self.probe_range(rel, &[key], lo, hi);
        }
        if self.slots.is_empty() {
            return Posting::EMPTY;
        }
        let m = self.slots.len() - 1;
        let mut i = (Self::hash1(key.0) as usize) & m;
        loop {
            let id = self.slots[i];
            if id == NO_KEY {
                return Posting::EMPTY;
            }
            let krec = &self.krecs[id as usize];
            if krec.key == key.0 {
                return self.posting(krec, lo, hi);
            }
            i = (i + 1) & m;
        }
    }

    /// The next row of a posting cursor (strictly decreasing row ids),
    /// or [`NO_ROW`] when the snapshot range is exhausted.
    #[inline]
    pub fn next_match(&self, p: &mut Posting) -> u32 {
        let r = p.chain;
        if r != NO_ROW {
            if r >= p.lo {
                p.chain = self.next[r as usize - self.frozen];
                return r;
            }
            p.chain = NO_ROW;
        }
        if p.seg < p.seg_end {
            let r = self.pool[p.seg as usize];
            p.seg += 1;
            return r;
        }
        NO_ROW
    }

    /// Forgets every indexed row (chains, segments, key table,
    /// watermark); the layout choice survives. The next
    /// [`IncrementalIndex::extend`] re-indexes the relation from row 0 —
    /// used after compaction renumbers the rows.
    pub fn reset(&mut self) {
        self.slots = Vec::new();
        self.krecs = Vec::new();
        self.next = Vec::new();
        self.pool = Vec::new();
        self.frozen = 0;
        self.watermark = 0;
    }

    /// Words (`u32`-sized) held by the chain, key, and segment stores
    /// (the memory-accounting hook for
    /// [`crate::materialize::Materialization::mem_stats`]).
    pub(crate) fn footprint_words(&self) -> usize {
        self.next.len() + self.slots.len() + self.pool.len() + 4 * self.krecs.len()
    }

    /// Words held by the frozen posting pool alone (reported as
    /// `MemStats::seg_words`; also included in
    /// [`IncrementalIndex::footprint_words`]).
    pub(crate) fn seg_pool_words(&self) -> usize {
        self.pool.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(v: u32) -> Const {
        Const(v)
    }

    /// Drains a posting cursor over `[lo, hi)` into a row-id vector.
    fn collect_range(
        idx: &IncrementalIndex,
        rel: &ColumnarRelation,
        key: &[Const],
        lo: usize,
        hi: usize,
    ) -> Vec<u32> {
        let mut p = idx.probe_range(rel, key, lo, hi);
        let mut rows = Vec::new();
        loop {
            let r = idx.next_match(&mut p);
            if r == NO_ROW {
                break;
            }
            rows.push(r);
        }
        rows
    }

    /// Full-range posting list of a key.
    fn collect(idx: &IncrementalIndex, rel: &ColumnarRelation, key: &[Const]) -> Vec<u32> {
        collect_range(idx, rel, key, 0, rel.num_rows())
    }

    #[test]
    fn insert_dedup_and_membership() {
        let mut rel = ColumnarRelation::new(2);
        assert!(rel.insert(&[c(1), c(2)]));
        assert!(!rel.insert(&[c(1), c(2)]));
        assert!(rel.insert(&[c(2), c(1)]));
        assert_eq!(rel.num_rows(), 2);
        assert!(rel.contains(&[c(1), c(2)]));
        assert!(!rel.contains(&[c(3), c(3)]));
        assert_eq!(rel.row(0), &[c(1), c(2)]);
        assert_eq!(rel.row(1), &[c(2), c(1)]);
    }

    #[test]
    fn find_row_returns_dense_insertion_ids() {
        let mut rel = ColumnarRelation::new(2);
        for i in 0..100u32 {
            rel.insert(&[c(i), c(i + 1)]);
        }
        for i in 0..100u32 {
            assert_eq!(rel.find_row(&[c(i), c(i + 1)]), i);
        }
        assert_eq!(rel.find_row(&[c(1), c(1)]), NO_ROW);
    }

    #[test]
    fn zero_arity_relation_holds_at_most_one_row() {
        let mut rel = ColumnarRelation::new(0);
        assert!(!rel.contains(&[]));
        assert!(rel.insert(&[]));
        assert!(!rel.insert(&[]));
        assert_eq!(rel.num_rows(), 1);
        assert!(rel.contains(&[]));
        assert_eq!(rel.row(0), &[] as &[Const]);
    }

    #[test]
    fn dedup_survives_growth() {
        let mut rel = ColumnarRelation::new(1);
        for i in 0..1000 {
            assert!(rel.insert(&[c(i)]));
        }
        for i in 0..1000 {
            assert!(!rel.insert(&[c(i)]));
            assert!(rel.contains(&[c(i)]));
        }
        assert_eq!(rel.num_rows(), 1000);
    }

    #[test]
    fn index_chains_are_newest_first() {
        let mut rel = ColumnarRelation::new(2);
        // key = column 0; three rows share key 7
        rel.insert(&[c(7), c(0)]);
        rel.insert(&[c(8), c(1)]);
        rel.insert(&[c(7), c(2)]);
        rel.insert(&[c(7), c(3)]);
        let mut idx = IncrementalIndex::new(0, vec![0]);
        idx.extend(&rel);
        let rows = collect(&idx, &rel, &[c(7)]);
        assert_eq!(rows, vec![3, 2, 0], "newest-first, strictly decreasing");
        assert_eq!(collect(&idx, &rel, &[c(9)]), Vec::<u32>::new());
    }

    #[test]
    fn incremental_extension_matches_full_rebuild() {
        let mut rel = ColumnarRelation::new(2);
        let mut incremental = IncrementalIndex::new(0, vec![1]);
        for step in 0..10 {
            for i in 0..50u32 {
                rel.insert(&[c(step * 50 + i), c(i % 7)]);
            }
            incremental.extend(&rel);
        }
        let mut fresh = IncrementalIndex::new(0, vec![1]);
        fresh.extend(&rel);
        for k in 0..7u32 {
            assert_eq!(
                collect(&incremental, &rel, &[c(k)]),
                collect(&fresh, &rel, &[c(k)]),
                "key {k}"
            );
        }
    }

    #[test]
    fn shard_ranges_partition_top_down() {
        for (lo, hi, k) in [(0, 100, 8), (5, 6, 4), (7, 7, 3), (0, 3, 8), (10, 1000, 1)] {
            let shards = shard_ranges(lo, hi, k);
            assert_eq!(shards.len(), k);
            // top-down, contiguous, exactly covering [lo, hi)
            let mut top = hi;
            for &(a, b) in &shards {
                assert_eq!(b, top, "contiguous top-down");
                assert!(a <= b);
                top = a;
            }
            assert_eq!(top, lo);
            let total: usize = shards.iter().map(|(a, b)| b - a).sum();
            assert_eq!(total, hi - lo);
            // balanced: sizes differ by at most one
            let sizes: Vec<usize> = shards.iter().map(|(a, b)| b - a).collect();
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(max - min <= 1, "{lo}..{hi} x{k}: {sizes:?}");
        }
    }

    #[test]
    fn tombstone_removes_membership_and_reinsert_gets_new_id() {
        let mut rel = ColumnarRelation::new(2);
        rel.insert(&[c(1), c(2)]);
        rel.insert(&[c(3), c(4)]);
        assert!(rel.tombstone(0));
        assert!(!rel.tombstone(0), "already dead");
        assert!(!rel.contains(&[c(1), c(2)]));
        assert_eq!(rel.find_row(&[c(1), c(2)]), NO_ROW);
        assert!(rel.contains(&[c(3), c(4)]));
        assert!(!rel.is_live(0));
        assert!(rel.is_live(1));
        assert_eq!(rel.num_live(), 1);
        assert_eq!(rel.num_rows(), 2, "row ids never shift");
        // Re-insert appends a fresh id; the dead row stays dead.
        assert!(rel.insert(&[c(1), c(2)]));
        assert_eq!(rel.find_row(&[c(1), c(2)]), 2);
        assert!(!rel.is_live(0));
        assert_eq!(rel.num_live(), 2);
        let live: Vec<_> = rel.rows_iter().collect();
        assert_eq!(live, vec![&[c(3), c(4)][..], &[c(1), c(2)][..]]);
    }

    #[test]
    fn tombstones_survive_growth_and_mass_churn() {
        let mut rel = ColumnarRelation::new(1);
        for i in 0..500u32 {
            rel.insert(&[c(i)]);
        }
        for i in (0..500u32).step_by(2) {
            assert!(rel.tombstone(i as usize));
        }
        // Growth rebuilds the dedup table from live rows only.
        for i in 500..1500u32 {
            assert!(rel.insert(&[c(i)]));
        }
        for i in 0..500u32 {
            assert_eq!(rel.contains(&[c(i)]), i % 2 == 1, "{i}");
        }
        assert_eq!(rel.num_live(), 250 + 1000);
        // Dead tuples re-insert at fresh ids, exactly once.
        for i in (0..500u32).step_by(2) {
            assert!(rel.insert(&[c(i)]));
            assert!(!rel.insert(&[c(i)]));
        }
        assert_eq!(rel.num_live(), 1500);
        assert_eq!(rel.num_rows(), 1750);
    }

    #[test]
    fn rows_appended_after_a_tombstone_are_live() {
        let mut rel = ColumnarRelation::new(1);
        rel.insert(&[c(0)]);
        rel.tombstone(0);
        for i in 1..200u32 {
            rel.insert(&[c(i)]);
            assert!(rel.is_live(i as usize), "{i}");
        }
    }

    #[test]
    fn epoch_tags_resurrect_rows_for_pinned_readers() {
        let mut rel = ColumnarRelation::new(1);
        rel.insert(&[c(0)]); // row 0, alive from epoch 0
        // Round producing epoch 1: insert row 1.
        rel.set_epoch(1);
        rel.insert(&[c(1)]);
        // Round producing epoch 2: retract row 0.
        rel.set_epoch(2);
        rel.tombstone(0);
        // Round producing epoch 3: re-insert the tuple (fresh row id 2).
        rel.set_epoch(3);
        rel.insert(&[c(0)]);

        // A reader pinned at epoch 1 (frontier 2) sees rows 0 and 1: row
        // 0 died in epoch 2 (> 1), row 2 is past the frontier.
        let snap: Vec<Vec<Const>> =
            rel.rows_iter_at(2, 1).map(|r| r.to_vec()).collect();
        assert_eq!(snap, vec![vec![c(0)], vec![c(1)]]);
        // A reader pinned at epoch 2 (frontier 2) no longer sees row 0.
        let snap: Vec<Vec<Const>> =
            rel.rows_iter_at(2, 2).map(|r| r.to_vec()).collect();
        assert_eq!(snap, vec![vec![c(1)]]);
        // A reader at the current epoch (frontier 3) sees the re-insert.
        let snap: Vec<Vec<Const>> =
            rel.rows_iter_at(3, 3).map(|r| r.to_vec()).collect();
        assert_eq!(snap, vec![vec![c(1)], vec![c(0)]]);
        // A frontier beyond the store clamps.
        assert_eq!(rel.rows_iter_at(100, 3).count(), 2);
    }

    #[test]
    fn reclaim_drops_only_unpinnable_tags() {
        let mut rel = ColumnarRelation::new(1);
        for i in 0..4u32 {
            rel.insert(&[c(i)]);
        }
        rel.set_epoch(1);
        rel.tombstone(0);
        rel.set_epoch(2);
        rel.tombstone(1);
        rel.set_epoch(3);
        rel.tombstone(2);
        // Readers pinned at >= 1 remain: tags <= 1 are reclaimable.
        rel.reclaim_tombstones(1);
        // The epoch-1 death (row 0) lost its tag — dead at every epoch.
        assert!(!rel.visible_at(0, 0), "untagged dead row is dead everywhere");
        // Later deaths still resurrect for earlier pins.
        assert!(rel.visible_at(1, 1), "row 1 died in epoch 2");
        assert!(!rel.visible_at(1, 2));
        assert!(rel.visible_at(2, 2), "row 2 died in epoch 3");
        // Full reclamation: nothing resurrects any more.
        rel.reclaim_tombstones(3);
        assert!(!rel.visible_at(1, 1));
        assert!(!rel.visible_at(2, 2));
        assert!(rel.visible_at(3, 0), "live rows are visible at any epoch");
    }

    #[test]
    fn plain_relations_never_populate_the_epoch_table() {
        let mut rel = ColumnarRelation::new(1);
        rel.insert(&[c(7)]);
        rel.tombstone(0); // epoch mode off: no tag
        assert!(!rel.visible_at(0, 0), "dead without a tag is just dead");
        assert_eq!(rel.rows_iter_at(1, 0).count(), 0);
    }

    #[test]
    fn compact_renumbers_survivors_and_rebuilds_dedup() {
        let mut rel = ColumnarRelation::new(2);
        for i in 0..300u32 {
            rel.insert(&[c(i), c(i + 1)]);
        }
        for i in (0..300).step_by(3) {
            rel.tombstone(i);
        }
        let remap = rel.compact();
        assert_eq!(remap.len(), 300);
        assert_eq!(rel.num_rows(), 200);
        assert_eq!(rel.num_dead(), 0);
        let mut expect = 0u32;
        for (old, &new) in remap.iter().enumerate() {
            if old % 3 == 0 {
                assert_eq!(new, NO_ROW, "dead row {old} dropped");
            } else {
                assert_eq!(new, expect, "dense, order-preserving");
                expect += 1;
            }
        }
        for i in 0..300u32 {
            let present = i % 3 != 0;
            assert_eq!(rel.contains(&[c(i), c(i + 1)]), present, "{i}");
            if present {
                assert_eq!(rel.find_row(&[c(i), c(i + 1)]), remap[i as usize]);
            }
        }
        // Inserts keep working after the rebuild, at dense fresh ids.
        assert!(rel.insert(&[c(0), c(1)]));
        assert_eq!(rel.find_row(&[c(0), c(1)]), 200);
        assert!(!rel.insert(&[c(1), c(2)]), "survivor still deduped");
    }

    #[test]
    fn compact_clears_epoch_tags_but_keeps_the_epoch() {
        let mut rel = ColumnarRelation::new(1);
        rel.insert(&[c(0)]);
        rel.insert(&[c(1)]);
        rel.set_epoch(5);
        rel.tombstone(0);
        assert_eq!(rel.tomb_tags().len(), 1);
        let remap = rel.compact();
        assert_eq!(remap, vec![NO_ROW, 0]);
        assert_eq!(rel.tomb_tags().len(), 0);
        assert_eq!(rel.current_epoch(), 5);
        // New tombstones keep getting tagged with the preserved epoch.
        rel.tombstone(0);
        assert_eq!(rel.tomb_tags().get(&0), Some(&5));
    }

    #[test]
    fn from_persist_round_trips_contents_and_liveness() {
        let mut rel = ColumnarRelation::new(2);
        for i in 0..100u32 {
            rel.insert(&[c(i), c(i * 2)]);
        }
        rel.set_epoch(3);
        for i in (0..100).step_by(7) {
            rel.tombstone(i);
        }
        let mut rebuilt = ColumnarRelation::from_persist(
            rel.arity(),
            rel.data().to_vec(),
            rel.num_rows(),
            rel.dead_words().to_vec(),
            rel.num_dead(),
            rel.current_epoch(),
            rel.tomb_tags().clone(),
        );
        // The dedup table comes back lazily: stale until the first
        // mutating touch, then bit-equivalent in behavior.
        rebuilt.ensure_slots();
        assert_eq!(rebuilt.num_rows(), rel.num_rows());
        assert_eq!(rebuilt.num_live(), rel.num_live());
        for i in 0..100u32 {
            let t = [c(i), c(i * 2)];
            assert_eq!(rebuilt.contains(&t), rel.contains(&t), "{i}");
            assert_eq!(rebuilt.find_row(&t), rel.find_row(&t), "{i}");
            assert_eq!(rebuilt.is_live(i as usize), rel.is_live(i as usize));
            assert_eq!(rebuilt.visible_at(i as usize, 2), rel.visible_at(i as usize, 2));
        }
    }

    #[test]
    fn stale_dedup_rebuilds_on_first_write() {
        let mut rel = ColumnarRelation::new(2);
        for i in 0..50u32 {
            rel.insert(&[c(i), c(i + 1)]);
        }
        let mut restored = ColumnarRelation::from_persist(
            rel.arity(),
            rel.data().to_vec(),
            rel.num_rows(),
            rel.dead_words().to_vec(),
            rel.num_dead(),
            rel.current_epoch(),
            rel.tomb_tags().clone(),
        );
        // No explicit ensure: the insert itself must rebuild first, so
        // a duplicate of a restored row still dedups...
        assert!(!restored.insert(&[c(3), c(4)]));
        // ...and a novel row gets the next dense id.
        assert!(restored.insert(&[c(99), c(100)]));
        assert_eq!(restored.find_row(&[c(99), c(100)]), 50);
        assert_eq!(restored.num_rows(), 51);
    }

    #[test]
    fn index_reset_then_extend_matches_fresh() {
        let mut rel = ColumnarRelation::new(2);
        for i in 0..100u32 {
            rel.insert(&[c(i % 5), c(i)]);
        }
        let mut idx = IncrementalIndex::new(0, vec![0]);
        idx.extend(&rel);
        idx.reset();
        assert_eq!(idx.watermark(), 0);
        idx.extend(&rel);
        let mut fresh = IncrementalIndex::new(0, vec![0]);
        fresh.extend(&rel);
        for k in 0..5u32 {
            assert_eq!(collect(&idx, &rel, &[c(k)]), collect(&fresh, &rel, &[c(k)]), "key {k}");
        }
    }

    #[test]
    fn empty_mask_chains_every_row() {
        let mut rel = ColumnarRelation::new(1);
        for i in 0..20u32 {
            rel.insert(&[c(i)]);
        }
        let mut idx = IncrementalIndex::new(0, vec![]);
        idx.extend(&rel);
        let rows = collect(&idx, &rel, &[]);
        assert_eq!(rows.len(), 20);
        assert_eq!(rows, (0..20u32).rev().collect::<Vec<_>>());
    }

    /// Both layouts, every key, every snapshot window: identical
    /// enumeration. This is the unit-level statement of the contract the
    /// engine-level layout proptests rely on.
    #[test]
    fn segmented_and_chained_layouts_enumerate_identically() {
        for mask in [vec![0usize], vec![1], vec![0, 1]] {
            let mut rel = ColumnarRelation::new(2);
            let mut seg = IncrementalIndex::new(0, mask.clone());
            let mut chains = IncrementalIndex::new(0, mask.clone());
            chains.set_segmented(false);
            // Interleave extensions (some tiny, some spanning several
            // freeze thresholds) so segments and hot chains coexist.
            let mut n = 0u32;
            for batch in [3usize, 90, 7, 400, 1, 150] {
                for _ in 0..batch {
                    // ~11 distinct keys on column 0, ~7 on column 1
                    rel.insert(&[c(n % 11), c(n % 7)]);
                    n += 1;
                }
                seg.extend(&rel);
                chains.extend(&rel);
            }
            assert!(seg.seg_pool_words() > 0, "mask {mask:?}: segments built");
            assert_eq!(chains.seg_pool_words(), 0, "chains-only layout has no pool");
            let keys: Vec<Vec<Const>> = match mask.len() {
                1 => (0..12u32).map(|k| vec![c(k)]).collect(),
                _ => (0..12u32).flat_map(|a| (0..8u32).map(move |b| vec![c(a), c(b)])).collect(),
            };
            let rows = rel.num_rows();
            for key in &keys {
                for (lo, hi) in [(0, rows), (0, 97), (97, rows), (200, 450), (rows, rows)] {
                    assert_eq!(
                        collect_range(&seg, &rel, key, lo, hi),
                        collect_range(&chains, &rel, key, lo, hi),
                        "mask {mask:?} key {key:?} range [{lo}, {hi})"
                    );
                }
            }
        }
    }

    /// The freeze policy keeps amortized work linear: the frozen store
    /// at least doubles per freeze, and everything frozen stays probed.
    #[test]
    fn freeze_policy_doubles_and_preserves_postings() {
        let mut rel = ColumnarRelation::new(2);
        let mut idx = IncrementalIndex::new(0, vec![0]);
        let mut frozen_sizes = Vec::new();
        let mut last_pool = 0usize;
        for i in 0..5000u32 {
            // distinct tuples (insert dedups), low-cardinality key column
            rel.insert(&[c(i % 3), c(i)]);
            idx.extend(&rel);
            if idx.seg_pool_words() != last_pool {
                frozen_sizes.push(idx.seg_pool_words());
                last_pool = idx.seg_pool_words();
            }
        }
        assert!(frozen_sizes.len() >= 2, "multiple freezes over 5000 rows");
        for w in frozen_sizes.windows(2) {
            assert!(w[1] >= 2 * w[0], "frozen store at least doubles: {frozen_sizes:?}");
        }
        for k in 0..3u32 {
            let rows = collect(&idx, &rel, &[c(k)]);
            let want: Vec<u32> = (0..5000u32).rev().filter(|r| r % 3 == k).collect();
            assert_eq!(rows, want, "key {k}");
        }
    }

    #[test]
    fn single_key_fast_path_matches_general_probe() {
        let mut rel = ColumnarRelation::new(3);
        for i in 0..500u32 {
            rel.insert(&[c(i % 13), c(i), c(i % 5)]);
        }
        let mut idx = IncrementalIndex::new(0, vec![2]);
        idx.extend(&rel);
        for k in 0..6u32 {
            // probe_range delegates to probe1_range for single masks;
            // both entry points must agree.
            assert_eq!(
                collect(&idx, &rel, &[c(k)]),
                {
                    let mut p = idx.probe1_range(&rel, c(k), 0, rel.num_rows());
                    let mut rows = Vec::new();
                    loop {
                        let r = idx.next_match(&mut p);
                        if r == NO_ROW {
                            break;
                        }
                        rows.push(r);
                    }
                    rows
                },
                "key {k}"
            );
        }
        assert_eq!(idx.num_keys(), 5);
        assert!(collect(&idx, &rel, &[c(99)]).is_empty());
    }

    #[test]
    fn layout_switch_is_rejected_once_rows_are_indexed() {
        let mut rel = ColumnarRelation::new(1);
        rel.insert(&[c(1)]);
        let mut idx = IncrementalIndex::new(0, vec![0]);
        idx.set_segmented(false);
        idx.set_segmented(false); // idempotent before and after rows
        idx.extend(&rel);
        idx.set_segmented(false); // same value: still fine
        let flip = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            idx.set_segmented(true);
        }));
        assert!(flip.is_err(), "layout flip after indexing must panic");
    }

    #[test]
    fn footprint_counts_segment_pool() {
        let mut rel = ColumnarRelation::new(2);
        for i in 0..300u32 {
            rel.insert(&[c(i % 4), c(i)]);
        }
        let mut idx = IncrementalIndex::new(0, vec![0]);
        idx.extend(&rel);
        assert!(idx.seg_pool_words() > 0);
        assert!(idx.footprint_words() >= idx.seg_pool_words());
        idx.reset();
        assert_eq!(idx.seg_pool_words(), 0);
        assert_eq!(idx.footprint_words(), 0);
        // Layout survives reset; re-extending re-freezes.
        idx.extend(&rel);
        assert!(idx.seg_pool_words() > 0);
    }
}
