//! Snapshot persistence: a versioned, length-prefixed, checksummed
//! binary container for [`crate::materialize::Materialization`] state,
//! written atomically — the durability layer that makes the serving
//! layer ([`crate::server`]) restartable without re-evaluation.
//!
//! No external dependencies: the codec is a hand-rolled little-endian
//! writer/reader pair, the checksum is FNV-1a 64.
//!
//! # File format (version 1)
//!
//! All integers are little-endian. The file is one self-delimiting
//! container:
//!
//! | offset        | bytes | contents                                      |
//! |---------------|-------|-----------------------------------------------|
//! | `0`           | 8     | magic `b"SPROPMAT"`                           |
//! | `8`           | 4     | format version (`u32`, currently 1)           |
//! | `12`          | 8     | total file length (`u64`, magic → checksum)   |
//! | `20`          | n     | payload sections (below)                      |
//! | `len - 8`     | 8     | checksum of bytes `[0, len - 8)` (`fnv1a64`,
//!                           eight-lane interleaved FNV-1a 64)             |
//!
//! The stored length makes any truncation a deterministic
//! [`PersistError::LengthMismatch`]; the trailing checksum makes any
//! byte corruption a deterministic [`PersistError::ChecksumMismatch`]
//! (every FNV-1a step is bijective and a byte belongs to exactly one
//! lane, so no single-byte change can collide — see `fnv1a64`'s docs). [`Materialization::from_bytes`](crate::materialize::Materialization::from_bytes)
//! verifies magic, version, length and checksum **before** parsing a
//! single payload byte — a corrupt file can never reach the decoder.
//!
//! ## Payload sections, in order
//!
//! 1. **Strategy** — tag `u8` (0 naive, 1 semi-naive, 2 parallel,
//!    3 sharded) plus `threads`/`shards` as `u64` where applicable.
//! 2. **Goal atom** — predicate `u32`, argument count `u64`, then per
//!    term a tag `u8` (0 constant, 1 variable) and its `u32` id.
//! 3. **Rules** — count, then every rule slot ever allocated (dropped
//!    ones included — justifications index rule slots) as head atom +
//!    body atoms.
//! 4. **Rule activity** — one `u8` per slot (0 = dropped).
//! 5. **Counters** — serving epoch, reverse-index builds, compactions
//!    (`u64` each).
//! 6. **EvalStats** — iterations, rule firings, tuples derived, join
//!    probes (`u64` each).
//! 7. **Convergence profile** — count + `u64` per productive iteration.
//! 8. **Compaction policy** — presence `u8`, then `min_dead_rows u64`,
//!    `dead_percent u32`.
//! 9. **Relations** — count, then per dense relation id: predicate
//!    `u32`, IDB flag `u8`, arity `u64`, row count `u64`, watermark
//!    `u64`, the flat row-major tuple data (`rows × arity` × `u32`),
//!    tombstone bitset (word count + `u64` words), tombstoned-row count
//!    `u64`, relation epoch `u64`, and the death-epoch tags as count +
//!    `(row u32, epoch u64)` pairs sorted by row id (deterministic
//!    bytes).
//! 10. **Justifications** — presence `u8`, then per relation its packed
//!     store: offsets (count + `u32`s) and buffer (count + `u32`s).
//!
//! Deliberately **not** serialized (rebuilt on restore): the dedup
//! tables (probe-history-dependent slot layout; write-path state, so
//! the rebuild is deferred to the first mutating round after restore),
//! the join indexes and index registry (re-hashed from the rows,
//! frozen posting segments included), compiled rule and re-derivation
//! plans (recompiled from the rules), and the reverse dependency index
//! (lazy). Restore therefore returns at the exact persisted fixpoint
//! without any re-evaluation: the expensive state is the rows and
//! justifications, which round-trip bit-for-bit.

use std::fmt;
use std::fs;
use std::io::{self, Read, Write};
use std::path::Path;

/// The 8-byte magic prefix of every snapshot file.
pub(crate) const MAGIC: [u8; 8] = *b"SPROPMAT";
/// The current format version. Bumped to 2 when the planner
/// configuration, per-rule body orders and the cardinality snapshot
/// joined the payload; bumped to 3 when the storage-layout flag
/// (segmented postings vs chains-only) joined the planner bytes. The
/// segments themselves are derived state and are rebuilt on restore.
pub(crate) const VERSION: u32 = 3;
/// Container overhead before the payload: magic + version + length.
const HEADER_LEN: usize = 8 + 4 + 8;
/// Trailing checksum bytes.
const CHECK_LEN: usize = 8;

/// Why a snapshot could not be written or restored.
///
/// Every restore failure is **clean**: the decoder verifies magic,
/// version, stored length and checksum before touching the payload, so
/// a truncated or corrupted file yields one of these — never a
/// successfully-restored-but-wrong store.
#[derive(Debug)]
pub enum PersistError {
    /// The underlying filesystem operation failed.
    Io(io::Error),
    /// The file is shorter than the fixed container framing.
    TooShort,
    /// The magic prefix is not a snapshot's.
    BadMagic,
    /// The format version is not supported (holds the version found).
    BadVersion(u32),
    /// The stored total length disagrees with the actual byte count
    /// (truncation, or trailing garbage).
    LengthMismatch {
        /// Length the header claims.
        stored: u64,
        /// Bytes actually present.
        actual: u64,
    },
    /// The trailing checksum (eight-lane FNV-1a 64) does not match the
    /// content.
    ChecksumMismatch,
    /// The checksummed payload failed a structural validity check
    /// (possible only for files not produced by this encoder).
    Corrupt(&'static str),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "snapshot i/o error: {e}"),
            PersistError::TooShort => write!(f, "snapshot file too short to be valid"),
            PersistError::BadMagic => write!(f, "not a materialization snapshot (bad magic)"),
            PersistError::BadVersion(v) => write!(f, "unsupported snapshot version {v}"),
            PersistError::LengthMismatch { stored, actual } => write!(
                f,
                "snapshot length mismatch: header says {stored} bytes, file has {actual}"
            ),
            PersistError::ChecksumMismatch => write!(f, "snapshot checksum mismatch"),
            PersistError::Corrupt(what) => write!(f, "snapshot payload corrupt: {what}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Eight-lane interleaved FNV-1a 64 over `bytes`: lane `i` runs plain
/// FNV-1a over bytes `i, i+8, i+16, …`, and the lane states are folded
/// (xor, then one more FNV step each) into a single `u64`.
///
/// Why the lanes: plain FNV-1a is a serial dependency chain — one
/// multiply per byte — which costs tens of milliseconds on a
/// multi-megabyte snapshot. Eight independent chains pipeline.
///
/// Why it still guarantees single-byte detection: every FNV-1a step
/// (xor, then multiply by an odd prime) is a bijection on `u64`, so a
/// changed byte bijectively changes its own lane's final state while
/// the other seven lanes are untouched; the fold's per-lane steps are
/// bijections too, so the folded value must differ. "Corrupt one byte
/// at any offset" therefore remains a *guaranteed* checksum mismatch.
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut lanes = [FNV_OFFSET; 8];
    // Distinct lane seeds: byte i of the length perturbs lane i, so
    // permuting whole 8-byte groups can't trivially swap lane states.
    for (i, b) in (bytes.len() as u64).to_le_bytes().iter().enumerate() {
        lanes[i] ^= u64::from(*b);
        lanes[i] = lanes[i].wrapping_mul(FNV_PRIME);
    }
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        for (lane, &b) in lanes.iter_mut().zip(chunk) {
            *lane ^= u64::from(b);
            *lane = lane.wrapping_mul(FNV_PRIME);
        }
    }
    for (lane, &b) in lanes.iter_mut().zip(chunks.remainder()) {
        *lane ^= u64::from(b);
        *lane = lane.wrapping_mul(FNV_PRIME);
    }
    let mut h = FNV_OFFSET;
    for lane in lanes {
        h ^= lane;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Little-endian payload writer.
#[derive(Default)]
pub(crate) struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    pub(crate) fn reserve(&mut self, bytes: usize) {
        self.buf.reserve(bytes);
    }

    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(crate) fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Length-prefixed `u32` slice.
    pub(crate) fn u32s(&mut self, vs: &[u32]) {
        self.usize(vs.len());
        self.u32_run(vs);
    }

    /// Raw `u32` run, no length prefix (for counts implied by earlier
    /// fields, e.g. row data sized by `rows × arity`).
    pub(crate) fn u32_run(&mut self, vs: &[u32]) {
        self.buf.reserve(vs.len() * 4);
        for &v in vs {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Length-prefixed `u64` slice.
    pub(crate) fn u64s(&mut self, vs: &[u64]) {
        self.usize(vs.len());
        self.buf.reserve(vs.len() * 8);
        for &v in vs {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Seals the payload into a complete snapshot file image: container
    /// header (magic, version, total length), payload, checksum.
    pub(crate) fn seal(self) -> Vec<u8> {
        let total = HEADER_LEN + self.buf.len() + CHECK_LEN;
        let mut out = Vec::with_capacity(total);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(total as u64).to_le_bytes());
        out.extend_from_slice(&self.buf);
        let check = fnv1a64(&out);
        out.extend_from_slice(&check.to_le_bytes());
        debug_assert_eq!(out.len(), total);
        out
    }
}

/// Bounds-checked little-endian payload reader. Every read returns
/// [`PersistError::Corrupt`] on overrun instead of panicking, and
/// length-prefixed reads validate the prefix against the remaining
/// bytes **before** allocating.
#[derive(Debug)]
pub(crate) struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(PersistError::Corrupt("payload section overruns the file"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Bytes left in the payload (for pre-allocation bounds checks on
    /// counts that are implied rather than length-prefixed).
    pub(crate) fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub(crate) fn u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub(crate) fn usize(&mut self) -> Result<usize, PersistError> {
        usize::try_from(self.u64()?).map_err(|_| PersistError::Corrupt("count overflows usize"))
    }

    /// A count validated against the bytes actually left (`item_bytes`
    /// per item), so a bogus length can never trigger a huge allocation.
    pub(crate) fn count(&mut self, item_bytes: usize) -> Result<usize, PersistError> {
        let n = self.usize()?;
        if n.checked_mul(item_bytes)
            .is_none_or(|b| b > self.buf.len() - self.pos)
        {
            return Err(PersistError::Corrupt("length prefix overruns the file"));
        }
        Ok(n)
    }

    pub(crate) fn u32s(&mut self) -> Result<Vec<u32>, PersistError> {
        let n = self.count(4)?;
        self.u32_run(n)
    }

    /// `n` consecutive `u32`s, decoded in bulk from one bounds check
    /// (the restore fast path: row data and justification buffers are
    /// millions of these).
    pub(crate) fn u32_run(&mut self, n: usize) -> Result<Vec<u32>, PersistError> {
        let nbytes = n
            .checked_mul(4)
            .ok_or(PersistError::Corrupt("payload section overruns the file"))?;
        let raw = self.take(nbytes)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    pub(crate) fn u64s(&mut self) -> Result<Vec<u64>, PersistError> {
        let n = self.count(8)?;
        let raw = self.take(n * 8)?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// Asserts the payload was consumed exactly.
    pub(crate) fn finish(self) -> Result<(), PersistError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(PersistError::Corrupt("trailing bytes after the payload"))
        }
    }
}

/// Verifies the container framing of a complete snapshot image — magic,
/// version, stored length, checksum, in that order — and returns a
/// reader positioned over the payload.
pub(crate) fn open(bytes: &[u8]) -> Result<Dec<'_>, PersistError> {
    if bytes.len() < HEADER_LEN + CHECK_LEN {
        return Err(PersistError::TooShort);
    }
    if bytes[..8] != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != VERSION {
        return Err(PersistError::BadVersion(version));
    }
    let stored = u64::from_le_bytes(bytes[12..20].try_into().unwrap());
    if stored != bytes.len() as u64 {
        return Err(PersistError::LengthMismatch {
            stored,
            actual: bytes.len() as u64,
        });
    }
    let body = &bytes[..bytes.len() - CHECK_LEN];
    let check = u64::from_le_bytes(bytes[bytes.len() - CHECK_LEN..].try_into().unwrap());
    if fnv1a64(body) != check {
        return Err(PersistError::ChecksumMismatch);
    }
    Ok(Dec {
        buf: body,
        pos: HEADER_LEN,
    })
}

/// Writes `bytes` to `path` **atomically**: the image goes to a
/// temporary file in the same directory, is flushed to disk, and is
/// `rename`d over the destination — so a crash mid-write leaves either
/// the previous snapshot or no file, never a torn one (POSIX rename is
/// atomic within a filesystem).
pub(crate) fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut tmp_name = path.as_os_str().to_os_string();
    tmp_name.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp_name);
    let res = (|| {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        fs::rename(&tmp, path)
    })();
    if res.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    res
}

/// Reads a whole snapshot file.
pub(crate) fn read_file(path: &Path) -> io::Result<Vec<u8>> {
    let mut buf = Vec::new();
    fs::File::open(path)?.read_to_end(&mut buf)?;
    Ok(buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn container_round_trips_and_rejects_every_framing_fault() {
        let mut enc = Enc::default();
        enc.u32(7);
        enc.u64s(&[1, 2, 3]);
        let img = enc.seal();

        let mut dec = open(&img).expect("intact image opens");
        assert_eq!(dec.u32().unwrap(), 7);
        assert_eq!(dec.u64s().unwrap(), vec![1, 2, 3]);
        dec.finish().unwrap();

        // Truncation at every boundary: always a clean framing error.
        for cut in 0..img.len() {
            let err = open(&img[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    PersistError::TooShort | PersistError::LengthMismatch { .. }
                ),
                "truncation at {cut} gave {err:?}"
            );
        }

        // Single-byte corruption at every offset: always detected.
        for off in 0..img.len() {
            let mut bad = img.clone();
            bad[off] ^= 0x5a;
            assert!(open(&bad).is_err(), "corruption at {off} not detected");
        }

        // Trailing garbage is a length mismatch, not silently ignored.
        let mut long = img.clone();
        long.push(0);
        assert!(matches!(
            open(&long).unwrap_err(),
            PersistError::LengthMismatch { .. }
        ));
    }

    #[test]
    fn decoder_reads_are_bounds_checked() {
        let mut enc = Enc::default();
        enc.u8(1);
        let img = enc.seal();
        let mut dec = open(&img).unwrap();
        assert_eq!(dec.u8().unwrap(), 1);
        assert!(dec.u64().is_err(), "overrun must error, not panic");

        // A length prefix larger than the file cannot allocate.
        let mut enc = Enc::default();
        enc.u64(u64::MAX / 8);
        let img = enc.seal();
        let mut dec = open(&img).unwrap();
        assert!(dec.u64s().is_err());
    }

    #[test]
    fn atomic_write_replaces_or_preserves_never_tears() {
        let dir = std::env::temp_dir().join(format!("selprop-persist-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.bin");

        let mut enc = Enc::default();
        enc.u32(1);
        let first = enc.seal();
        write_atomic(&path, &first).unwrap();
        assert_eq!(read_file(&path).unwrap(), first);

        let mut enc = Enc::default();
        enc.u32(2);
        let second = enc.seal();
        write_atomic(&path, &second).unwrap();
        assert_eq!(read_file(&path).unwrap(), second);

        // A simulated crash mid-write (torn temp file never renamed)
        // leaves the previous snapshot intact and readable.
        let mut tmp_name = path.as_os_str().to_os_string();
        tmp_name.push(".tmp");
        fs::write(std::path::PathBuf::from(tmp_name), &first[..5]).unwrap();
        assert_eq!(read_file(&path).unwrap(), second);
        open(&read_file(&path).unwrap()).expect("previous snapshot still valid");

        let _ = fs::remove_dir_all(&dir);
    }
}
