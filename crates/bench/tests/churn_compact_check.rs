//! The `churn_compact` binary's contract (the CI durability smoke
//! step): the healthy churn loop — bounded memory under compaction, no
//! drift, bit-for-bit snapshot round-trip — must exit zero, and the
//! bounded-memory gate must really reject unbounded growth (exercised
//! by aiming it at the no-compaction control) with exit code 2. Both
//! paths are driven end-to-end through the real binary.

use std::process::Command;

#[test]
fn corrupt_growth_exits_nonzero() {
    let out = Command::new(env!("CARGO_BIN_EXE_churn_compact"))
        .args(["--smoke", "--corrupt-growth"])
        .output()
        .expect("spawn churn_compact binary");
    assert_eq!(
        out.status.code(),
        Some(2),
        "the no-compaction control must trip the 2x gate; stdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("exceeds 2x"),
        "stderr should describe the growth violation:\n{stderr}"
    );
}

#[test]
fn smoke_churn_compact_exits_zero_across_strategies() {
    for threads in ["1", "2", "4"] {
        let out = Command::new(env!("CARGO_BIN_EXE_churn_compact"))
            .arg("--smoke")
            .env("SELPROP_THREADS", threads)
            .output()
            .expect("spawn churn_compact binary");
        let stdout = String::from_utf8_lossy(&out.stdout);
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            out.status.success(),
            "durability smoke (SELPROP_THREADS={threads}) must pass:\n{stdout}\n{stderr}"
        );
        assert!(
            stdout.contains("churn_compact OK"),
            "summary line missing (SELPROP_THREADS={threads}):\n{stdout}"
        );
    }
}
