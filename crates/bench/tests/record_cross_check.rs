//! The `record` binary's contract: a storage/reference cross-check
//! mismatch must terminate the process with a **nonzero** exit code, and
//! the healthy pipeline (including the per-thread-count rows) must exit
//! zero. Both paths are driven end-to-end through the real binary.

use std::process::Command;

#[test]
fn corrupt_cross_check_exits_nonzero() {
    let out = Command::new(env!("CARGO_BIN_EXE_record"))
        .arg("--corrupt-cross-check")
        .output()
        .expect("spawn record binary");
    assert!(
        !out.status.success(),
        "deliberately corrupted cross-check must exit nonzero; stdout:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("cross-check mismatch"),
        "stderr should describe the mismatch:\n{stderr}"
    );
    assert!(
        stderr.contains("counter drift"),
        "stderr should name the drifted counters:\n{stderr}"
    );
}

#[test]
fn smoke_run_exits_zero_and_writes_json() {
    let out = Command::new(env!("CARGO_BIN_EXE_record"))
        .arg("--smoke")
        .output()
        .expect("spawn record binary");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "smoke run must pass its cross-checks:\n{stdout}\n{stderr}"
    );
    // The smoke output path is printed on the last line.
    let path = stdout
        .lines()
        .rev()
        .find_map(|l| l.strip_prefix("wrote "))
        .expect("record prints the output path");
    let json = std::fs::read_to_string(path).expect("smoke JSON written");
    let _ = std::fs::remove_file(path); // don't accumulate temp files
    // Per-thread-count rows made it into the file.
    for t in [1usize, 2, 4, 8] {
        assert!(
            json.contains(&format!("threads={t}")),
            "missing threads={t} row in:\n{json}"
        );
    }
    assert!(json.contains("\"wall_ms_reference\""));
    // The incremental-maintenance group ran and was cross-checked: its
    // build/insert/recompute/retract rows are all present.
    for row in ["incremental", "/build", "/insert(", "/recompute_after_insert", "/retract("] {
        assert!(json.contains(row), "missing incremental row {row} in:\n{json}");
    }
    // The serving group ran and was cross-checked: the batched vs
    // single-fact round pair and the concurrent-read row are present.
    for row in ["\"server\"", "/batched", "/single_fact", "/readers="] {
        assert!(json.contains(row), "missing server row {row} in:\n{json}");
    }
    // The durability group ran and was gated: the churn memory table
    // (both compaction settings) and the restore-vs-recompute row.
    for row in [
        "\"durability\"",
        "/compaction=on",
        "/compaction=off",
        "\"peak_over_fresh\"",
        "/restore\"",
        "\"restore_speedup\"",
    ] {
        assert!(json.contains(row), "missing durability row {row} in:\n{json}");
    }
    // The query-cache group ran and was oracle-checked: both headline
    // workloads' rows are present with the latency and memory metrics.
    for row in [
        "\"query_cache\"",
        "e1/A/layered_dag(",
        "e5/magic_view/",
        "\"cached_after_churn_ms\"",
        "\"speedup_vs_cold_batch\"",
        "\"view_over_base\"",
    ] {
        assert!(json.contains(row), "missing query_cache row {row} in:\n{json}");
    }
    // The storage-layout A/B group ran (chains-only vs segmented, both
    // reference-checked and provenance-compared) with the wall pair,
    // the gated speedup and the segment-pool footprint all recorded.
    for row in [
        "\"storage\"",
        "\"wall_ms_chains\"",
        "\"wall_ms_segmented\"",
        "\"layout_speedup\"",
        "\"seg_words\"",
        "\"index_words_chains\"",
        "\"index_words_segmented\"",
    ] {
        assert!(json.contains(row), "missing storage row {row} in:\n{json}");
    }
    // The join-planner A/B group ran (legacy vs planned, both
    // reference-checked) and the CPU/affinity annotation that qualifies
    // every wall-clock number is machine-readable.
    for row in [
        "\"planner\"",
        "\"firings_per_distinct_off\"",
        "\"firings_reduction\"",
        "\"tc_kernel_hits\"",
        "\"machine\"",
        "\"cpus\"",
        "\"cpus_allowed_list\"",
    ] {
        assert!(json.contains(row), "missing planner row {row} in:\n{json}");
    }
}
