//! The `server_churn` binary's contract (the CI server smoke step): a
//! consistency drift between concurrent epoch-pinned reads and the
//! from-scratch reference model of their round prefix must terminate
//! the process with exit code 2, and the healthy multi-threaded churn
//! run must exit zero — at sequential *and* parallel writer strategies.
//! Both paths are driven end-to-end through the real binary.

use std::process::Command;

#[test]
fn corrupt_consistency_exits_nonzero() {
    let out = Command::new(env!("CARGO_BIN_EXE_server_churn"))
        .args(["--smoke", "--corrupt-consistency"])
        .output()
        .expect("spawn server_churn binary");
    assert_eq!(
        out.status.code(),
        Some(2),
        "deliberately corrupted oracle must exit 2; stdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("consistency drift"),
        "stderr should describe the drift:\n{stderr}"
    );
}

#[test]
fn smoke_churn_exits_zero_across_strategies() {
    for threads in ["1", "2", "4"] {
        let out = Command::new(env!("CARGO_BIN_EXE_server_churn"))
            .arg("--smoke")
            .env("SELPROP_THREADS", threads)
            .output()
            .expect("spawn server_churn binary");
        let stdout = String::from_utf8_lossy(&out.stdout);
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            out.status.success(),
            "smoke churn (SELPROP_THREADS={threads}) must pass:\n{stdout}\n{stderr}"
        );
        assert!(
            stdout.contains("prefix-consistent reads"),
            "summary line missing (SELPROP_THREADS={threads}):\n{stdout}"
        );
    }
}
