//! Shared helpers for the selprop benchmark harness.
//!
//! Every bench prints, before timing, the *work-count table* for its
//! experiment (rule firings, join probes, tuples derived) — the
//! machine-independent numbers EXPERIMENTS.md records — and then lets
//! Criterion measure wall time on the same configurations.

use selprop_datalog::db::Database;
use selprop_datalog::eval::{answer, EvalStats, Strategy};
use selprop_datalog::Program;

/// Evaluates and returns `(answer count, stats)`.
pub fn run(program: &Program, db: &Database, strategy: Strategy) -> (usize, EvalStats) {
    let (ans, stats) = answer(program, db, strategy);
    (ans.len(), stats)
}

/// Prints one row of a work table.
pub fn row(label: &str, n: usize, answers: usize, stats: &EvalStats) {
    println!(
        "{label:<24} n={n:<8} answers={answers:<8} tuples={:<10} work={:<12} iters={}",
        stats.tuples_derived,
        stats.work(),
        stats.iterations
    );
}

/// Standard small/medium/large sweep used across experiments.
pub const SIZES: [usize; 3] = [100, 400, 1600];

/// The evaluation strategy selected by the `SELPROP_THREADS` environment
/// variable: `>= 2` picks the sharded parallel engine with that many
/// workers, anything else (unset, `0`, `1`, garbage) the sequential
/// semi-naive engine. Lets CI exercise the parallel path on every bench
/// without a separate harness (`SELPROP_THREADS=4 cargo bench ...`).
pub fn strategy_from_env() -> Strategy {
    match std::env::var("SELPROP_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
    {
        Some(threads) if threads >= 2 => Strategy::SemiNaiveParallel { threads },
        _ => Strategy::SemiNaive,
    }
}

/// Thread counts for the scaling sweeps in the E1/E5 benches.
pub const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];
