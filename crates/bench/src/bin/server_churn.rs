//! The CI server smoke: a short multi-threaded churn run against the
//! live materialization server with a full consistency cross-check.
//!
//! Reader threads pin epoch snapshots and query while the writer
//! applies a randomized round stream (inserts, retracts, mixed rounds,
//! one rule drop/re-add pair). Every read is compared against the
//! from-scratch reference model of its pinned round prefix; **any
//! drift terminates the process with exit code 2** — mirroring the
//! `record` binary's cross-check discipline, so CI can rely on it.
//!
//! ```text
//! cargo run --release -p selprop-bench --bin server_churn -- --smoke
//! ```
//!
//! Flags (used by `tests/server_churn_check.rs`):
//!
//! - `--smoke`: fewer rounds (the CI configuration; the default run is
//!   already short, smoke halves it);
//! - `--corrupt-consistency`: deliberately perturbs one expected
//!   prefix model before the run, proving drift really propagates to
//!   exit 2.
//!
//! The writer strategy follows `SELPROP_THREADS` (see
//! [`selprop_bench::strategy_from_env`]), so CI can sweep thread
//! counts with the same binary.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use selprop_bench::strategy_from_env;
use selprop_datalog::db::Tuple;
use selprop_datalog::eval::Strategy;
use selprop_datalog::reference;
use selprop_datalog::{parse_program, Database, Pred, Program, RuleId, Server, UpdateRound};

const READERS: usize = 4;

/// Deterministic xorshift64* stream for the churn schedule.
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Sorted nonempty `(pred, tuples)` canonical form shared by snapshot
/// databases and reference models.
fn canon(db: &Database) -> Vec<(Pred, Vec<Tuple>)> {
    db.sorted_models().into_iter().filter(|(_, rows)| !rows.is_empty()).collect()
}

/// Stored EDB facts plus the from-scratch reference IDB model.
fn expected_state(program: &Program, edb: &Database) -> Vec<(Pred, Vec<Tuple>)> {
    let spec = reference::evaluate(program, edb, Strategy::SemiNaive);
    let mut merged = edb.clone();
    for (p, r) in spec.idb.iter() {
        for t in r.sorted() {
            merged.insert(p, t);
        }
    }
    canon(&merged)
}

fn churn(rounds_n: usize, strategy: Strategy, corrupt: bool) -> Result<(usize, usize), String> {
    let mut p = parse_program(
        "?- anc(john, Y).\n\
         anc(X, Y) :- par(X, Y).\n\
         anc(X, Y) :- anc(X, Z), par(Z, Y).",
    )
    .expect("valid program");
    let par = p.symbols.get_predicate("par").unwrap();
    let mut p_minus = p.clone();
    p_minus.rules = vec![p.rules[0].clone()];

    let names: Vec<_> = (0..=6 * rounds_n)
        .map(|i| {
            if i == 0 {
                p.symbols.constant("john")
            } else {
                p.symbols.constant(&format!("c{i}"))
            }
        })
        .collect();
    let edge = |i: usize| -> Tuple { vec![names[i], names[i + 1]] };

    // Bulk load, then precompute the stream and the per-prefix oracle.
    let mut db0 = Database::new();
    let mut len = 8usize;
    for i in 0..len {
        db0.insert(par, edge(i));
    }
    let mut rng = Rng(0xC0FF_EE01);
    let mut rounds: Vec<UpdateRound> = Vec::new();
    let mut expected: Vec<Vec<(Pred, Vec<Tuple>)>> = vec![expected_state(&p, &db0)];
    let mut mirror = db0.clone();
    let mut closure_active = true;
    for r in 0..rounds_n {
        let mut round = UpdateRound::new();
        if r == rounds_n / 3 {
            round = round.drop_rule(RuleId(1));
            closure_active = false;
        } else if r == 2 * rounds_n / 3 {
            round = round.add_rule(p.rules[1].clone());
            closure_active = true;
        }
        match rng.below(3) {
            0 => {
                for _ in 0..=rng.below(4) {
                    round = round.insert(par, edge(len));
                    mirror.insert(par, edge(len));
                    len += 1;
                }
            }
            1 if len > 4 => {
                len -= 1;
                round = round.retract(par, edge(len));
                assert!(mirror.remove(par, &edge(len)));
            }
            _ => {
                len -= 1;
                round = round.retract(par, edge(len));
                assert!(mirror.remove(par, &edge(len)));
                for _ in 0..2 {
                    round = round.insert(par, edge(len));
                    mirror.insert(par, edge(len));
                    len += 1;
                }
            }
        }
        rounds.push(round);
        let variant = if closure_active { &p } else { &p_minus };
        expected.push(expected_state(variant, &mirror));
    }
    if corrupt {
        // Deliberate drift in the oracle for the final prefix: the
        // post-churn check (and any reader landing there) must fail.
        let last = expected.last_mut().expect("nonempty stream");
        let john = p.symbols.get_constant("john").unwrap();
        last.push((Pred(u32::MAX), vec![vec![john]]));
    }
    let expected = Arc::new(expected);

    let server = Server::from_database(&p, &db0, strategy);
    let done = Arc::new(AtomicBool::new(false));
    let handles: Vec<_> = (0..READERS)
        .map(|_| {
            let server = server.clone();
            let expected = Arc::clone(&expected);
            let done = Arc::clone(&done);
            thread::spawn(move || -> Result<usize, String> {
                let mut reads = 0usize;
                let mut last_epoch = 0u64;
                while !done.load(Ordering::Acquire) {
                    let snap = server.snapshot();
                    let e = snap.epoch() as usize;
                    if snap.epoch() < last_epoch {
                        return Err(format!("epochs went backwards ({last_epoch} -> {e})"));
                    }
                    last_epoch = snap.epoch();
                    if e >= expected.len() || canon(&snap.database()) != expected[e] {
                        return Err(format!("read at epoch {e} diverges from its prefix model"));
                    }
                    reads += 1;
                }
                Ok(reads)
            })
        })
        .collect();

    for round in &rounds {
        server.apply(round);
    }
    done.store(true, Ordering::Release);
    let mut reads = 0usize;
    for h in handles {
        reads += h.join().map_err(|_| "reader thread panicked".to_owned())??;
    }
    // The writer's own post-churn check: the final store must equal the
    // full-stream oracle (this is what --corrupt-consistency trips even
    // if every reader finished before the corrupted prefix).
    let final_state = canon(&server.snapshot().database());
    if final_state != expected[rounds_n] {
        return Err(format!(
            "post-churn store diverges from the full-stream reference model \
             ({} relations vs {})",
            final_state.len(),
            expected[rounds_n].len()
        ));
    }
    Ok((reads, rounds_n))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let corrupt = args.iter().any(|a| a == "--corrupt-consistency");
    let rounds = if args.iter().any(|a| a == "--smoke") { 12 } else { 24 };
    let strategy = strategy_from_env();
    match churn(rounds, strategy, corrupt) {
        Ok((reads, rounds)) => {
            if corrupt {
                eprintln!("consistency check FAILED to detect deliberate corruption");
                std::process::exit(3);
            }
            println!(
                "server churn OK: {READERS} readers made {reads} prefix-consistent reads \
                 across {rounds} rounds ({strategy:?})"
            );
        }
        Err(e) => {
            eprintln!("consistency drift: {e}");
            std::process::exit(2);
        }
    }
}
