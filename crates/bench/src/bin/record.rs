//! Records the evaluation baseline: work counters **and** wall-clock for
//! the headline experiment configs, including the large-scale (>10⁶
//! derived tuples) workloads, into `BENCH_eval.json` at the repo root.
//!
//! Work counters are machine-independent and must never drift (the
//! reference engine is run on every config as a cross-check); wall-clock
//! is machine-dependent and recorded so future PRs can track the perf
//! trajectory on the same box. Run with:
//!
//! ```text
//! cargo run --release -p selprop-bench --bin record
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use selprop_core::workload;
use selprop_datalog::db::Database;
use selprop_datalog::eval::{answer, EvalStats, Strategy};
use selprop_datalog::magic::magic_transform;
use selprop_datalog::parser::parse_program;
use selprop_datalog::{reference, Program};

struct Row {
    experiment: &'static str,
    config: String,
    answers: usize,
    stats: EvalStats,
    wall_ms: f64,
    reference_wall_ms: f64,
}

/// Mean wall-clock of `runs` storage-engine evaluations plus one
/// reference-engine run (which doubles as the counter cross-check).
fn measure(experiment: &'static str, config: String, p: &Program, db: &Database, runs: u32) -> Row {
    let mut total = 0.0;
    let mut out = None;
    for _ in 0..runs {
        let t0 = Instant::now();
        let (ans, stats) = answer(p, db, Strategy::SemiNaive);
        total += t0.elapsed().as_secs_f64() * 1e3;
        out = Some((ans.len(), stats));
    }
    let (answers, stats) = out.expect("runs >= 1");

    let t0 = Instant::now();
    let (ref_ans, ref_stats) = reference::answer(p, db, Strategy::SemiNaive);
    let reference_wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(stats, ref_stats, "{experiment}/{config}: counter drift");
    assert_eq!(answers, ref_ans.len(), "{experiment}/{config}: answer drift");

    println!(
        "{experiment:<4} {config:<28} answers={answers:<8} tuples={:<9} work={:<11} storage={:>9.2}ms reference={:>10.2}ms speedup={:>5.1}x",
        stats.tuples_derived,
        stats.work(),
        total / f64::from(runs),
        reference_wall_ms,
        reference_wall_ms / (total / f64::from(runs)),
    );
    Row {
        experiment,
        config,
        answers,
        stats,
        wall_ms: total / f64::from(runs),
        reference_wall_ms,
    }
}

fn e1_rows(rows: &mut Vec<Row>) {
    const PROGRAMS: [(&str, &str); 4] = [
        ("A", "?- anc(john, Y).\nanc(X, Y) :- par(X, Y).\nanc(X, Y) :- anc(X, Z), par(Z, Y)."),
        ("B", "?- anc(john, Y).\nanc(X, Y) :- par(X, Y).\nanc(X, Y) :- par(X, Z), anc(Z, Y)."),
        ("C", "?- anc(john, Y).\nanc(X, Y) :- par(X, Y).\nanc(X, Y) :- anc(X, Z), anc(Z, Y)."),
        ("D", "?- ancjohn(Y).\nancjohn(Y) :- par(john, Y).\nancjohn(Y) :- ancjohn(Z), par(Z, Y)."),
    ];
    for n in [100usize, 400] {
        for (name, src) in PROGRAMS {
            let mut p = parse_program(src).unwrap();
            let mut db = workload::random_forest(&mut p, "par", "john", n, 11);
            let noise = workload::wide(&mut p, "par", "elsewhere", 0, n / 20, 10);
            for (pred, rel) in noise.iter() {
                for t in rel.iter() {
                    db.insert(pred, t.clone());
                }
            }
            rows.push(measure("e1", format!("{name}/n={n}"), &p, &db, 5));
            if name == "A" {
                let magic = magic_transform(&p).unwrap();
                rows.push(measure("e1", format!("magic({name})/n={n}"), &magic.program, &db, 5));
            }
        }
    }
    // Large scale: >10^6 derived anc tuples from a 28_820-edge layered
    // DAG. Program A materializes the full closure; Program D (monadic)
    // shows the paper's point — selection propagation stays linear.
    for (name, src) in [PROGRAMS[0], PROGRAMS[3]] {
        let mut p = parse_program(src).unwrap();
        let db = workload::layered_dag(&mut p, "par", "john", 72, 20);
        rows.push(measure("e1", format!("{name}/layered_dag(72,20)"), &p, &db, 2));
    }
}

fn e5_rows(rows: &mut Vec<Row>) {
    const SRC: &str = "?- p(c, Y).\n\
                       p(X, Y) :- b1(X, X1), b2(X1, Y).\n\
                       p(X, Y) :- b1(X, X1), p(X1, Y1), b2(Y1, Y).";
    let orig = parse_program(SRC).unwrap();
    let magic = magic_transform(&orig).unwrap();
    for (layers, noise) in [(10usize, 50usize), (20, 400), (40, 3200)] {
        let mut p1 = orig.clone();
        let db1 = workload::layered_b1_b2(&mut p1, "c", layers, noise);
        rows.push(measure("e5", format!("original/{layers}x{noise}"), &p1, &db1, 5));
        let mut p2 = magic.program.clone();
        let db2 = workload::layered_b1_b2(&mut p2, "c", layers, noise);
        rows.push(measure("e5", format!("magic/{layers}x{noise}"), &p2, &db2, 5));
    }
    // Large scale: 10^6 noise pairs each deriving one irrelevant p fact —
    // the magic-pruning scenario at a size where storage costs dominate.
    let (layers, noise) = (20usize, 1_000_000usize);
    let mut p1 = orig.clone();
    let db1 = workload::layered_b1_b2(&mut p1, "c", layers, noise);
    rows.push(measure("e5", format!("original/{layers}x{noise}"), &p1, &db1, 2));
    let mut p2 = magic.program.clone();
    let db2 = workload::layered_b1_b2(&mut p2, "c", layers, noise);
    rows.push(measure("e5", format!("magic/{layers}x{noise}"), &p2, &db2, 2));
}

fn main() {
    let mut rows = Vec::new();
    println!("== recording evaluation baseline (storage engine vs reference) ==");
    e1_rows(&mut rows);
    e5_rows(&mut rows);

    let mut json = String::from("{\n  \"generated_by\": \"cargo run --release -p selprop-bench --bin record\",\n  \"engine\": \"columnar-watermark\",\n  \"experiments\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"experiment\": \"{}\", \"config\": \"{}\", \"answers\": {}, \"iterations\": {}, \"rule_firings\": {}, \"tuples_derived\": {}, \"join_probes\": {}, \"wall_ms_mean\": {:.3}, \"wall_ms_reference\": {:.3}}}{}",
            r.experiment,
            r.config,
            r.answers,
            r.stats.iterations,
            r.stats.rule_firings,
            r.stats.tuples_derived,
            r.stats.join_probes,
            r.wall_ms,
            r.reference_wall_ms,
            if i + 1 == rows.len() { "" } else { "," },
        );
        json.push('\n');
    }
    json.push_str("  ]\n}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_eval.json");
    std::fs::write(path, json).expect("write BENCH_eval.json");
    println!("\nwrote {path}");
}
