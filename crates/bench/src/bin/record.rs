//! Records the evaluation baseline: work counters **and** wall-clock for
//! the headline experiment configs, including the large-scale (>10⁶
//! derived tuples) workloads and the thread-scaling sweep of the
//! parallel engine, into `BENCH_eval.json` at the repo root.
//!
//! Work counters are machine-independent and must never drift (the
//! reference engine is run on every config as a cross-check, and every
//! per-thread-count run is cross-checked against the sequential storage
//! engine); wall-clock is machine-dependent and recorded so future PRs
//! can track the perf trajectory on the same box. **A cross-check
//! mismatch terminates the process with a nonzero exit code** — CI and
//! scripts must be able to rely on that. Run with:
//!
//! ```text
//! cargo run --release -p selprop-bench --bin record
//! ```
//!
//! Flags (used by the bench crate's integration tests):
//!
//! - `--smoke`: tiny configs only, output to a temp path — exercises the
//!   full pipeline (including thread rows) in seconds;
//! - `--planner-only`: runs just the join-planner A/B group (combine
//!   with `--smoke` for the CI-sized variant) and exits 2 on any drift
//!   or gate violation, without touching `BENCH_eval.json`;
//! - `--storage-only`: ditto for the storage-layout A/B group
//!   (segmented postings vs chains-only);
//! - `--corrupt-cross-check`: deliberately corrupts one reference
//!   counter before the comparison, proving the failure path really
//!   propagates to a nonzero exit.

use std::fmt::Write as _;
use std::time::Instant;

use selprop_bench::{strategy_from_env, THREAD_SWEEP};
use selprop_core::workload;
use selprop_datalog::db::{Database, Tuple};
use selprop_datalog::eval::{
    answer, answer_cfg, apply_goal, evaluate, evaluate_cfg, evaluate_with_provenance, EvalStats,
    Strategy,
};
use selprop_datalog::magic::magic_transform;
use selprop_datalog::parser::parse_program;
use selprop_datalog::{
    reference, CompactionPolicy, Materialization, PlannerConfig, Program, Server, UpdateRound,
};

struct Row {
    experiment: &'static str,
    config: String,
    threads: usize,
    answers: usize,
    stats: EvalStats,
    wall_ms: f64,
    /// Reference-engine wall-clock; `None` for per-thread-count rows
    /// (those cross-check against the sequential storage run instead).
    reference_wall_ms: Option<f64>,
}

/// The cross-check: counters and answer counts must agree exactly.
/// Returns a descriptive error (propagated to a nonzero process exit)
/// on any drift.
fn cross_check(
    label: &str,
    stats: EvalStats,
    answers: usize,
    want_stats: EvalStats,
    want_answers: usize,
) -> Result<(), String> {
    if stats != want_stats {
        return Err(format!(
            "{label}: counter drift\n  got:  {stats:?}\n  want: {want_stats:?}"
        ));
    }
    if answers != want_answers {
        return Err(format!(
            "{label}: answer drift (got {answers}, want {want_answers})"
        ));
    }
    Ok(())
}

/// Mean wall-clock (ms) of `runs` invocations of `f`, plus the last
/// invocation's result — the one measurement idiom every sweep uses.
fn timed<T>(runs: u32, mut f: impl FnMut() -> T) -> (f64, T) {
    assert!(runs >= 1);
    let mut total = 0.0;
    let mut out = None;
    for _ in 0..runs {
        let t0 = Instant::now();
        let v = f();
        total += t0.elapsed().as_secs_f64() * 1e3;
        out = Some(v);
    }
    (total / f64::from(runs), out.expect("runs >= 1"))
}

/// Mean wall-clock of `runs` storage-engine evaluations plus one
/// reference-engine run (which doubles as the counter cross-check).
/// `corrupt` perturbs the reference counters first — the self-test of
/// the failure path.
fn measure(
    experiment: &'static str,
    config: String,
    p: &Program,
    db: &Database,
    runs: u32,
    corrupt: bool,
) -> Result<Row, String> {
    let (wall_ms, (answers, stats)) = timed(runs, || {
        let (ans, stats) = answer(p, db, Strategy::SemiNaive);
        (ans.len(), stats)
    });

    let t0 = Instant::now();
    let (ref_ans, mut ref_stats) = reference::answer(p, db, Strategy::SemiNaive);
    let reference_wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    if corrupt {
        // Deliberate drift: the caller expects the pipeline to fail.
        ref_stats.join_probes += 1;
    }
    cross_check(
        &format!("{experiment}/{config}"),
        stats,
        answers,
        ref_stats,
        ref_ans.len(),
    )?;

    println!(
        "{experiment:<4} {config:<28} answers={answers:<8} tuples={:<9} work={:<11} storage={wall_ms:>9.2}ms reference={reference_wall_ms:>10.2}ms speedup={:>5.1}x",
        stats.tuples_derived,
        stats.work(),
        reference_wall_ms / wall_ms,
    );
    Ok(Row {
        experiment,
        config,
        threads: 1,
        answers,
        stats,
        wall_ms,
        reference_wall_ms: Some(reference_wall_ms),
    })
}

/// Appends one row per [`THREAD_SWEEP`] entry for the same config,
/// cross-checking every parallel run against the sequential storage
/// stats (which the preceding [`measure`] already checked against the
/// reference engine).
#[allow(clippy::too_many_arguments)]
fn measure_threads(
    rows: &mut Vec<Row>,
    experiment: &'static str,
    config: &str,
    p: &Program,
    db: &Database,
    runs: u32,
    want_stats: EvalStats,
    want_answers: usize,
) -> Result<(), String> {
    let mut wall_by_thread = Vec::new();
    for &threads in &THREAD_SWEEP {
        let (wall_ms, (answers, stats)) = timed(runs, || {
            let (ans, stats) = answer(p, db, Strategy::SemiNaiveParallel { threads });
            (ans.len(), stats)
        });
        cross_check(
            &format!("{experiment}/{config}/threads={threads}"),
            stats,
            answers,
            want_stats,
            want_answers,
        )?;
        println!(
            "{experiment:<4} {:<28} answers={answers:<8} tuples={:<9} work={:<11} storage={wall_ms:>9.2}ms",
            format!("{config}/threads={threads}"),
            stats.tuples_derived,
            stats.work(),
        );
        wall_by_thread.push((threads, wall_ms));
        rows.push(Row {
            experiment,
            config: format!("{config}/threads={threads}"),
            threads,
            answers,
            stats,
            wall_ms,
            reference_wall_ms: None,
        });
    }
    if let (Some(&(_, w1)), Some(&(_, w8))) = (
        wall_by_thread.iter().find(|(t, _)| *t == 1),
        wall_by_thread.iter().find(|(t, _)| *t == 8),
    ) {
        println!("     {config:<28} thread-scaling 8t vs 1t: {:.2}x", w1 / w8);
    }
    Ok(())
}

fn e1_rows(rows: &mut Vec<Row>, smoke: bool) -> Result<(), String> {
    const PROGRAMS: [(&str, &str); 4] = [
        ("A", "?- anc(john, Y).\nanc(X, Y) :- par(X, Y).\nanc(X, Y) :- anc(X, Z), par(Z, Y)."),
        ("B", "?- anc(john, Y).\nanc(X, Y) :- par(X, Y).\nanc(X, Y) :- par(X, Z), anc(Z, Y)."),
        ("C", "?- anc(john, Y).\nanc(X, Y) :- par(X, Y).\nanc(X, Y) :- anc(X, Z), anc(Z, Y)."),
        ("D", "?- ancjohn(Y).\nancjohn(Y) :- par(john, Y).\nancjohn(Y) :- ancjohn(Z), par(Z, Y)."),
    ];
    let sizes: &[usize] = if smoke { &[60] } else { &[100, 400] };
    for &n in sizes {
        for (name, src) in PROGRAMS {
            let mut p = parse_program(src).unwrap();
            let mut db = workload::random_forest(&mut p, "par", "john", n, 11);
            let noise = workload::wide(&mut p, "par", "elsewhere", 0, n / 20, 10);
            for (pred, rel) in noise.iter() {
                for t in rel.iter() {
                    db.insert(pred, t.clone());
                }
            }
            let row = measure("e1", format!("{name}/n={n}"), &p, &db, 5, false)?;
            let (stats, answers) = (row.stats, row.answers);
            rows.push(row);
            if name == "A" {
                if smoke {
                    // Smoke mode exercises the thread sweep on the small
                    // config instead of the large closure.
                    measure_threads(
                        rows,
                        "e1",
                        &format!("{name}/n={n}"),
                        &p,
                        &db,
                        2,
                        stats,
                        answers,
                    )?;
                }
                let magic = magic_transform(&p).unwrap();
                rows.push(measure(
                    "e1",
                    format!("magic({name})/n={n}"),
                    &magic.program,
                    &db,
                    5,
                    false,
                )?);
            }
        }
    }
    if smoke {
        return Ok(());
    }
    // Large scale: >10^6 derived anc tuples from a 28_820-edge layered
    // DAG. Program A materializes the full closure; Program D (monadic)
    // shows the paper's point — selection propagation stays linear.
    // Program A's closure is the headline thread-scaling config.
    for (name, src) in [PROGRAMS[0], PROGRAMS[3]] {
        let mut p = parse_program(src).unwrap();
        let db = workload::layered_dag(&mut p, "par", "john", 72, 20);
        let config = format!("{name}/layered_dag(72,20)");
        let row = measure("e1", config.clone(), &p, &db, 2, false)?;
        let (stats, answers) = (row.stats, row.answers);
        rows.push(row);
        if name == "A" {
            measure_threads(rows, "e1", &config, &p, &db, 2, stats, answers)?;
        }
    }
    Ok(())
}

fn e5_rows(rows: &mut Vec<Row>, smoke: bool) -> Result<(), String> {
    const SRC: &str = "?- p(c, Y).\n\
                       p(X, Y) :- b1(X, X1), b2(X1, Y).\n\
                       p(X, Y) :- b1(X, X1), p(X1, Y1), b2(Y1, Y).";
    let orig = parse_program(SRC).unwrap();
    let magic = magic_transform(&orig).unwrap();
    let configs: &[(usize, usize)] = if smoke {
        &[(8, 40)]
    } else {
        &[(10, 50), (20, 400), (40, 3200)]
    };
    for &(layers, noise) in configs {
        let mut p1 = orig.clone();
        let db1 = workload::layered_b1_b2(&mut p1, "c", layers, noise);
        rows.push(measure("e5", format!("original/{layers}x{noise}"), &p1, &db1, 5, false)?);
        let mut p2 = magic.program.clone();
        let db2 = workload::layered_b1_b2(&mut p2, "c", layers, noise);
        rows.push(measure("e5", format!("magic/{layers}x{noise}"), &p2, &db2, 5, false)?);
    }
    if smoke {
        return Ok(());
    }
    // Large scale: 10^6 noise pairs each deriving one irrelevant p fact —
    // the magic-pruning scenario at a size where storage costs dominate.
    // The untransformed program is the second thread-scaling config.
    let (layers, noise) = (20usize, 1_000_000usize);
    let mut p1 = orig.clone();
    let db1 = workload::layered_b1_b2(&mut p1, "c", layers, noise);
    let config = format!("original/{layers}x{noise}");
    let row = measure("e5", config.clone(), &p1, &db1, 2, false)?;
    let (stats, answers) = (row.stats, row.answers);
    rows.push(row);
    measure_threads(rows, "e5", &config, &p1, &db1, 2, stats, answers)?;
    let mut p2 = magic.program.clone();
    let db2 = workload::layered_b1_b2(&mut p2, "c", layers, noise);
    rows.push(measure("e5", format!("magic/{layers}x{noise}"), &p2, &db2, 2, false)?);
    Ok(())
}

/// Provenance-overhead rows (`prov=off` vs `prov=on` on the same
/// config — the counters are identical by contract, so the pair
/// isolates the wall-clock cost of recording justifications) and a
/// shard-sweep over [`Strategy::SemiNaiveSharded`] (threads fixed,
/// shard count varying; counters are shard-count independent).
fn prov_and_shard_rows(rows: &mut Vec<Row>, smoke: bool) -> Result<(), String> {
    const SRC_A: &str =
        "?- anc(john, Y).\nanc(X, Y) :- par(X, Y).\nanc(X, Y) :- anc(X, Z), par(Z, Y).";
    let n = if smoke { 60 } else { 400 };
    let runs = if smoke { 2 } else { 5 };
    let mut p = parse_program(SRC_A).unwrap();
    let mut db = workload::random_forest(&mut p, "par", "john", n, 11);
    let noise = workload::wide(&mut p, "par", "elsewhere", 0, n / 20, 10);
    for (pred, rel) in noise.iter() {
        for t in rel.iter() {
            db.insert(pred, t.clone());
        }
    }
    let config = format!("A/n={n}");
    let (want_answers, want_stats) = prov_pair(rows, &config, &p, &db, runs)?;
    shard_sweep(rows, &config, &p, &db, runs, want_stats, want_answers)?;
    if smoke {
        return Ok(());
    }
    // The headline >10^6-tuple closure: provenance overhead and shard
    // sweep where storage costs dominate.
    let mut p = parse_program(SRC_A).unwrap();
    let db = workload::layered_dag(&mut p, "par", "john", 72, 20);
    let (want_answers, want_stats) = prov_pair(rows, "A/layered_dag(72,20)", &p, &db, 2)?;
    shard_sweep(rows, "A/layered_dag(72,20)", &p, &db, 2, want_stats, want_answers)?;
    Ok(())
}

/// Returns the sequential `(answers, stats)` baseline so the caller can
/// feed the shard sweep without re-evaluating.
fn prov_pair(
    rows: &mut Vec<Row>,
    config: &str,
    p: &Program,
    db: &Database,
    runs: u32,
) -> Result<(usize, EvalStats), String> {
    let (off_wall, (want_answers, want_stats)) = timed(runs, || {
        let (ans, stats) = answer(p, db, Strategy::SemiNaive);
        (ans.len(), stats)
    });
    let (on_wall, result) = timed(runs, || {
        evaluate_with_provenance(p, db, Strategy::SemiNaive)
    });
    // Outside the timed loop: the lazy model conversion is a consumer
    // choice, not part of the recording overhead being measured.
    let idb = result.provenance.idb_database();
    let ans = idb
        .relation(p.goal.pred)
        .map(|rel| apply_goal(&p.goal, rel).len())
        .unwrap_or(0);
    cross_check(
        &format!("prov/{config}"),
        result.stats,
        ans,
        want_stats,
        want_answers,
    )?;
    if result.provenance.num_derived() as u64 != want_stats.tuples_derived {
        return Err(format!(
            "prov/{config}: justification count {} != derived tuples {}",
            result.provenance.num_derived(),
            want_stats.tuples_derived
        ));
    }
    for (mode, wall) in [("off", off_wall), ("on", on_wall)] {
        println!(
            "prov {:<28} answers={want_answers:<8} tuples={:<9} work={:<11} storage={wall:>9.2}ms",
            format!("{config}/prov={mode}"),
            want_stats.tuples_derived,
            want_stats.work(),
        );
        rows.push(Row {
            experiment: "prov",
            config: format!("{config}/prov={mode}"),
            threads: 1,
            answers: want_answers,
            stats: want_stats,
            wall_ms: wall,
            reference_wall_ms: None,
        });
    }
    println!(
        "     {config:<28} provenance recording overhead: {:.2}x",
        (on_wall / off_wall).max(0.0)
    );
    Ok((want_answers, want_stats))
}

#[allow(clippy::too_many_arguments)]
fn shard_sweep(
    rows: &mut Vec<Row>,
    config: &str,
    p: &Program,
    db: &Database,
    runs: u32,
    want_stats: EvalStats,
    want_answers: usize,
) -> Result<(), String> {
    let threads = 4usize;
    for shards in [4usize, 16, 32] {
        let (wall_ms, (answers, stats)) = timed(runs, || {
            let (ans, stats) = answer(p, db, Strategy::SemiNaiveSharded { threads, shards });
            (ans.len(), stats)
        });
        cross_check(
            &format!("shards/{config}/threads={threads}/shards={shards}"),
            stats,
            answers,
            want_stats,
            want_answers,
        )?;
        println!(
            "shrd {:<28} answers={answers:<8} tuples={:<9} work={:<11} storage={wall_ms:>9.2}ms",
            format!("{config}/t={threads}/shards={shards}"),
            stats.tuples_derived,
            stats.work(),
        );
        rows.push(Row {
            experiment: "shards",
            config: format!("{config}/threads={threads}/shards={shards}"),
            threads,
            answers,
            stats,
            wall_ms,
            reference_wall_ms: None,
        });
    }
    Ok(())
}

/// Sorted-model equality of two databases (the incremental group's
/// cross-check currency: row ids churn across updates, live tuple sets
/// must not).
fn models_equal(label: &str, got: &Database, want: &Database) -> Result<(), String> {
    let (g, w) = (got.sorted_models(), want.sorted_models());
    if g != w {
        return Err(format!(
            "{label}: model drift (got {} relations / {} facts, want {} / {})",
            g.len(),
            g.iter().map(|(_, t)| t.len()).sum::<usize>(),
            w.len(),
            w.iter().map(|(_, t)| t.len()).sum::<usize>()
        ));
    }
    Ok(())
}

/// The incremental-maintenance group: insert ~1% new edges into the E1
/// closure as a live update, compare its latency against a full
/// recompute, then retract them and verify the pre-insert store is
/// restored — **cross-checked against a from-scratch evaluation (and
/// the reference engine) both times**. Any drift propagates as `Err`
/// (→ process exit 2).
fn incremental_rows(rows: &mut Vec<Row>, smoke: bool) -> Result<(), String> {
    const SRC_A: &str =
        "?- anc(john, Y).\nanc(X, Y) :- par(X, Y).\nanc(X, Y) :- anc(X, Z), par(Z, Y).";
    // Non-smoke: the headline 10^6-tuple closure (28_800 edges); the new
    // edges are 1% of the input — a chain of fresh nodes off the root,
    // so the update genuinely derives new closure tuples.
    let (layers, width, new_edges) = if smoke { (6, 4, 8) } else { (72, 20, 288) };
    let mut p = parse_program(SRC_A).unwrap();
    let par = p.symbols.get_predicate("par").unwrap();
    let db = workload::layered_dag(&mut p, "par", "john", layers, width);
    let config = format!("A/layered_dag({layers},{width})");

    let mut edges: Vec<Tuple> = Vec::with_capacity(new_edges);
    let mut prev = p.symbols.get_constant("john").unwrap();
    for i in 0..new_edges {
        let c = p.symbols.constant(&format!("live{i}"));
        edges.push(vec![prev, c]);
        prev = c;
    }
    let mut db_after = db.clone();
    for e in &edges {
        db_after.insert(par, e.clone());
    }

    // Build the materialization (one batch fixpoint, recording on).
    let (build_ms, mut m) = timed(1, || Materialization::from_database(&p, &db, Strategy::SemiNaive));
    let build_stats = m.stats();
    let base_answers = m.answer().len();
    rows.push(Row {
        experiment: "incremental",
        config: format!("{config}/build"),
        threads: 1,
        answers: base_answers,
        stats: build_stats,
        wall_ms: build_ms,
        reference_wall_ms: None,
    });

    // Live insert vs full recompute.
    let (insert_ms, novel) = timed(1, || m.insert_facts(par, &edges));
    if novel != new_edges {
        return Err(format!(
            "incremental/{config}: expected {new_edges} novel edges, stored {novel}"
        ));
    }
    let insert_stats = diff_stats(m.stats(), build_stats);
    let (recompute_ms, scratch) = timed(1, || evaluate(&p, &db_after, Strategy::SemiNaive));
    models_equal(
        &format!("incremental/{config}/insert"),
        &m.idb_database(),
        &scratch.idb,
    )?;
    let t0 = Instant::now();
    let spec = reference::evaluate(&p, &db_after, Strategy::SemiNaive);
    let reference_wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    models_equal(
        &format!("incremental/{config}/insert(reference)"),
        &m.idb_database(),
        &spec.idb,
    )?;
    let insert_answers = m.answer().len();
    rows.push(Row {
        experiment: "incremental",
        config: format!("{config}/insert({new_edges})"),
        threads: 1,
        answers: insert_answers,
        stats: insert_stats,
        wall_ms: insert_ms,
        reference_wall_ms: None,
    });
    rows.push(Row {
        experiment: "incremental",
        config: format!("{config}/recompute_after_insert"),
        threads: 1,
        answers: insert_answers,
        stats: scratch.stats,
        wall_ms: recompute_ms,
        reference_wall_ms: Some(reference_wall_ms),
    });
    println!(
        "incr {config:<28} insert {new_edges} edges: {insert_ms:>9.2}ms vs full recompute {recompute_ms:>9.2}ms  speedup={:>5.1}x",
        recompute_ms / insert_ms
    );

    // Retract the same edges: the pre-insert store must come back.
    let pre_insert_stats = m.stats();
    let (retract_ms, removed) = timed(1, || m.retract_facts(par, &edges));
    if removed != new_edges {
        return Err(format!(
            "incremental/{config}: expected {new_edges} retracted edges, removed {removed}"
        ));
    }
    let retract_stats = diff_stats(m.stats(), pre_insert_stats);
    // Cross-check "both times": from-scratch storage engine AND the
    // reference engine on the restored database.
    let scratch0 = evaluate(&p, &db, Strategy::SemiNaive);
    models_equal(
        &format!("incremental/{config}/retract"),
        &m.idb_database(),
        &scratch0.idb,
    )?;
    let t0 = Instant::now();
    let spec0 = reference::evaluate(&p, &db, Strategy::SemiNaive);
    let reference_wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    models_equal(
        &format!("incremental/{config}/retract(reference)"),
        &m.idb_database(),
        &spec0.idb,
    )?;
    let mut edb_after_retract = Database::new();
    for (pred, rel) in m.database().iter() {
        if pred == par {
            for t in rel.iter() {
                edb_after_retract.insert(pred, t.clone());
            }
        }
    }
    models_equal(
        &format!("incremental/{config}/retract(edb)"),
        &edb_after_retract,
        &db,
    )?;
    if m.answer().len() != base_answers {
        return Err(format!(
            "incremental/{config}/retract: answer drift (got {}, want {base_answers})",
            m.answer().len()
        ));
    }
    println!(
        "incr {config:<28} retract {new_edges} edges: {retract_ms:>9.2}ms (store restored bit-for-bit)"
    );
    rows.push(Row {
        experiment: "incremental",
        config: format!("{config}/retract({new_edges})"),
        threads: 1,
        answers: base_answers,
        stats: retract_stats,
        wall_ms: retract_ms,
        reference_wall_ms: Some(reference_wall_ms),
    });
    Ok(())
}

/// The serving group: (a) one batched mixed [`UpdateRound`] against the
/// equivalent sequence of single-fact calls on the same store — the
/// batch must be cheaper (it builds the reverse-dependency CSR once,
/// asserted via [`Materialization::csr_builds`]) and leave the
/// bit-identical store, cross-checked against a from-scratch evaluation;
/// (b) concurrent read throughput of epoch-pinned [`Server`] snapshots
/// under live write load, every read checked against the precomputed
/// reference answer of its pinned round prefix. Any drift propagates as
/// `Err` (→ process exit 2).
fn server_rows(rows: &mut Vec<Row>, smoke: bool) -> Result<(), String> {
    const SRC_A: &str =
        "?- anc(john, Y).\nanc(X, Y) :- par(X, Y).\nanc(X, Y) :- anc(X, Z), par(Z, Y).";
    // Non-smoke: the headline 10^6-tuple closure, as in the incremental
    // group; the round touches a fresh chain off the root.
    let (layers, width, k) = if smoke { (6, 4, 8) } else { (72, 20, 32) };
    let mut p = parse_program(SRC_A).unwrap();
    let par = p.symbols.get_predicate("par").unwrap();
    let db = workload::layered_dag(&mut p, "par", "john", layers, width);
    let config = format!("A/layered_dag({layers},{width})");

    // Prep: a 2k-edge live chain off the root, present in both stores.
    let mut chain: Vec<Tuple> = Vec::with_capacity(2 * k);
    let mut prev = p.symbols.get_constant("john").unwrap();
    for i in 0..2 * k {
        let c = p.symbols.constant(&format!("live{i}"));
        chain.push(vec![prev, c]);
        prev = c;
    }
    // The mixed round: retract the chain's tail half, insert a fresh
    // branch of k edges off the surviving tip.
    let retracts: Vec<Tuple> = chain[k..].to_vec();
    let mut inserts: Vec<Tuple> = Vec::with_capacity(k);
    let mut prev = chain[k - 1][1];
    for i in 0..k {
        let c = p.symbols.constant(&format!("branch{i}"));
        inserts.push(vec![prev, c]);
        prev = c;
    }

    let make_store = || {
        let mut m = Materialization::from_database(&p, &db, Strategy::SemiNaive);
        m.insert_facts(par, &chain);
        m
    };
    let mut batched = make_store();
    let mut single = make_store();
    let round = {
        let mut r = UpdateRound::new();
        for t in &retracts {
            r = r.retract(par, t.clone());
        }
        for t in &inserts {
            r = r.insert(par, t.clone());
        }
        r
    };

    let csr0 = batched.csr_builds();
    let stats0 = batched.stats();
    let (batched_ms, report) = timed(1, || batched.apply(&round));
    if report.retracted != retracts.len() || report.inserted != inserts.len() {
        return Err(format!(
            "server/{config}/batched: round report drift (retracted {}, inserted {})",
            report.retracted, report.inserted
        ));
    }
    if batched.csr_builds() - csr0 != 1 {
        return Err(format!(
            "server/{config}/batched: {} CSR builds for one round (want 1)",
            batched.csr_builds() - csr0
        ));
    }
    let batched_stats = diff_stats(batched.stats(), stats0);

    let csr0 = single.csr_builds();
    let stats0 = single.stats();
    let (single_ms, ()) = timed(1, || {
        for t in &retracts {
            single.retract_facts(par, std::slice::from_ref(t));
        }
        for t in &inserts {
            single.insert_facts(par, std::slice::from_ref(t));
        }
    });
    // The persistent reverse index makes even the single-fact sequence
    // pay at most one lazy from-scratch build (not one per call).
    if single.csr_builds() - csr0 > 1 {
        return Err(format!(
            "server/{config}/single: {} reverse-index builds for {} retract calls (want ≤1)",
            single.csr_builds() - csr0,
            retracts.len()
        ));
    }
    let single_stats = diff_stats(single.stats(), stats0);

    // The two stores must be bit-identical, and both must equal the
    // from-scratch model of the mutated database.
    models_equal(
        &format!("server/{config}/batched-vs-single"),
        &batched.database(),
        &single.database(),
    )?;
    let mut db_after = db.clone();
    for t in &chain[..k] {
        db_after.insert(par, t.clone());
    }
    for t in &inserts {
        db_after.insert(par, t.clone());
    }
    let scratch = evaluate(&p, &db_after, Strategy::SemiNaive);
    models_equal(
        &format!("server/{config}/batched(scratch)"),
        &batched.idb_database(),
        &scratch.idb,
    )?;
    let answers = batched.answer().len();
    for (mode, wall, stats) in [
        ("batched", batched_ms, batched_stats),
        ("single_fact", single_ms, single_stats),
    ] {
        println!(
            "srv  {:<28} answers={answers:<8} tuples={:<9} work={:<11} storage={wall:>9.2}ms",
            format!("{config}/round={mode}"),
            stats.tuples_derived,
            stats.work(),
        );
        rows.push(Row {
            experiment: "server",
            config: format!("{config}/round({k}ins+{k}ret)/{mode}"),
            threads: 1,
            answers,
            stats,
            wall_ms: wall,
            reference_wall_ms: None,
        });
    }
    println!(
        "     {config:<28} batched round vs single-fact calls: {:.2}x cheaper",
        single_ms / batched_ms
    );

    // (b) Read throughput under write load: readers take epoch-pinned
    // snapshots while the writer applies the same round split into
    // per-edge rounds; every read is checked against the reference
    // answer count of its prefix.
    let rounds: Vec<UpdateRound> = retracts
        .iter()
        .map(|t| UpdateRound::new().retract(par, t.clone()))
        .chain(inserts.iter().map(|t| UpdateRound::new().insert(par, t.clone())))
        .collect();
    let replay = Server::from_database(&p, &db, Strategy::SemiNaive);
    replay.insert_facts(par, &chain);
    let mut expected = vec![replay.answer().len()];
    for r in &rounds {
        replay.apply(r);
        expected.push(replay.answer().len());
    }
    let expected = std::sync::Arc::new(expected);

    let server = Server::from_database(&p, &db, Strategy::SemiNaive);
    server.insert_facts(par, &chain);
    let base_epoch = server.current_epoch();
    let base_stats = server.stats();
    let done = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let readers = 4usize;
    let t0 = Instant::now();
    let handles: Vec<_> = (0..readers)
        .map(|_| {
            let server = server.clone();
            let expected = std::sync::Arc::clone(&expected);
            let done = std::sync::Arc::clone(&done);
            std::thread::spawn(move || -> Result<usize, String> {
                let mut reads = 0usize;
                while !done.load(std::sync::atomic::Ordering::Acquire) {
                    let snap = server.snapshot();
                    let e = (snap.epoch() - base_epoch) as usize;
                    let got = snap.answer().len();
                    if e >= expected.len() || got != expected[e] {
                        return Err(format!(
                            "read at prefix {e}: {got} answers, want {:?}",
                            expected.get(e)
                        ));
                    }
                    reads += 1;
                }
                Ok(reads)
            })
        })
        .collect();
    for r in &rounds {
        server.apply(r);
    }
    done.store(true, std::sync::atomic::Ordering::Release);
    let mut total_reads = 0usize;
    for h in handles {
        total_reads += h
            .join()
            .map_err(|_| "server reader thread panicked".to_owned())?
            .map_err(|e| format!("server/{config}/reads: consistency drift: {e}"))?;
    }
    let churn_wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    models_equal(
        &format!("server/{config}/post-churn"),
        &server.snapshot().database(),
        &batched.database(),
    )?;
    println!(
        "srv  {:<28} reads={total_reads:<7} rounds={:<3} wall={churn_wall_ms:>9.2}ms ({:.0} reads/s under write load)",
        format!("{config}/readers={readers}"),
        rounds.len(),
        total_reads as f64 / (churn_wall_ms / 1e3),
    );
    rows.push(Row {
        experiment: "server",
        config: format!("{config}/readers={readers}/rounds={}/reads={total_reads}", rounds.len()),
        threads: readers,
        answers,
        stats: diff_stats(server.stats(), base_stats),
        wall_ms: churn_wall_ms,
        reference_wall_ms: None,
    });
    Ok(())
}

/// One churn round paired with its per-fact `(pred, tuple, inserted)`
/// mirror script — the query-cache sweep's unit of work.
type ChurnRound = (UpdateRound, Vec<(selprop_datalog::ast::Pred, Tuple, bool)>);

/// One row of the durability group: free-form numeric metrics (memory
/// footprints, latencies, ratios) keyed by name, rendered into the
/// `"durability"` section of `BENCH_eval.json`.
struct DurRow {
    config: String,
    metrics: Vec<(&'static str, f64)>,
}

/// The durability group: (a) the churn-loop memory table — ≥10^4
/// interleaved insert/retract rounds on the E1 closure with and without
/// compaction, gating peak row-addressed words at 2x of a fresh store —
/// and (b) snapshot save/restore latency against a full recompute of
/// the same closure, gating restore at ≥20x faster (non-smoke). Every
/// run is cross-checked for drift against the from-scratch reference,
/// and the snapshot round-trip must be bit-for-bit. Any violation
/// propagates as `Err` (→ process exit 2).
fn durability_rows(smoke: bool) -> Result<Vec<DurRow>, String> {
    const SRC_A: &str =
        "?- anc(john, Y).\nanc(X, Y) :- par(X, Y).\nanc(X, Y) :- anc(X, Z), par(Z, Y).";
    let mut out = Vec::new();

    // (a) The churn loop: every round kills one chain edge (rotating
    // through the tail region) and restores it — steady live state,
    // maximal tombstone pressure.
    let (n, rounds) = if smoke { (32usize, 200usize) } else { (64, 10_000) };
    let mut p = parse_program(SRC_A).unwrap();
    let par = p.symbols.get_predicate("par").unwrap();
    let mut prev = p.symbols.constant("john");
    let edges: Vec<Tuple> = (1..=n)
        .map(|i| {
            let c = p.symbols.constant(&format!("c{i}"));
            let t = vec![prev, c];
            prev = c;
            t
        })
        .collect();
    let mut db0 = Database::new();
    for e in &edges {
        db0.insert(par, e.clone());
    }
    let fresh_words = Materialization::from_database(&p, &db0, Strategy::SemiNaive)
        .mem_stats()
        .row_words();
    for (policy, label, rds) in [
        (
            Some(CompactionPolicy { min_dead_rows: 32, dead_percent: 30 }),
            "on",
            rounds,
        ),
        // The control's footprint grows with every round, so cap it.
        (None, "off", rounds.min(1_000)),
    ] {
        let mut m = Materialization::from_database(&p, &db0, Strategy::SemiNaive);
        m.set_compaction_policy(policy);
        let mut peak = 0usize;
        let t0 = Instant::now();
        for i in 0..rds {
            let victim = n - 1 - (i % 4);
            if m.retract_facts(par, &edges[victim..=victim]) != 1 {
                return Err(format!("durability/churn: round {i} retracted nothing"));
            }
            if m.insert_facts(par, &edges[victim..=victim]) != 1 {
                return Err(format!("durability/churn: round {i} re-inserted nothing"));
            }
            peak = peak.max(m.mem_stats().row_words());
        }
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        // No drift: every round restored what it killed, so the final
        // store must equal the from-scratch model of the original EDB.
        let spec = reference::evaluate(&p, &db0, Strategy::SemiNaive);
        models_equal(
            &format!("durability/churn/compaction={label}"),
            &m.idb_database(),
            &spec.idb,
        )?;
        let ratio = peak as f64 / fresh_words as f64;
        if policy.is_some() {
            if ratio > 2.0 {
                return Err(format!(
                    "durability/churn: peak {peak} words exceeds 2x the fresh store ({fresh_words} words): {ratio:.2}x"
                ));
            }
            if m.compactions() == 0 {
                return Err("durability/churn: the policy never compacted".into());
            }
        }
        println!(
            "dur  {:<28} peak={peak:<8} fresh={fresh_words:<8} ratio={ratio:<5.2} compactions={:<5} wall={wall_ms:>9.2}ms",
            format!("churn({rds})/compaction={label}"),
            m.compactions(),
        );
        out.push(DurRow {
            config: format!("A/chain({n})/churn({rds})/compaction={label}"),
            metrics: vec![
                ("rounds", rds as f64),
                ("peak_words", peak as f64),
                ("fresh_words", fresh_words as f64),
                ("peak_over_fresh", ratio),
                ("compactions", m.compactions() as f64),
                ("wall_ms", wall_ms),
            ],
        });
    }

    // (b) Restore vs recompute on the headline closure (>10^6 derived
    // tuples non-smoke): loading the snapshot must beat re-running the
    // fixpoint by ≥20x.
    let (layers, width) = if smoke { (6usize, 4usize) } else { (72, 20) };
    let mut p = parse_program(SRC_A).unwrap();
    let db = workload::layered_dag(&mut p, "par", "john", layers, width);
    let (recompute_ms, m) = timed(1, || {
        Materialization::from_database(&p, &db, Strategy::SemiNaive)
    });
    let path = std::env::temp_dir().join(format!("selprop_record_{}.snap", std::process::id()));
    let (save_ms, ()) = timed(1, || m.save(&path).expect("snapshot save"));
    let (restore_ms, m2) = timed(1, || Materialization::restore(&path).expect("snapshot restore"));
    let snapshot_bytes = std::fs::metadata(&path).map(|md| md.len()).unwrap_or(0);
    std::fs::remove_file(&path).ok();
    if m2.to_bytes() != m.to_bytes() {
        return Err("durability/restore: round-trip is not bit-for-bit".into());
    }
    let speedup = recompute_ms / restore_ms;
    if !smoke && speedup < 20.0 {
        return Err(format!(
            "durability/restore: {restore_ms:.2}ms vs recompute {recompute_ms:.2}ms — only {speedup:.1}x, want ≥20x"
        ));
    }
    println!(
        "dur  {:<28} restore={restore_ms:>9.2}ms save={save_ms:>9.2}ms recompute={recompute_ms:>9.2}ms speedup={speedup:>5.1}x ({snapshot_bytes} bytes)",
        format!("layered_dag({layers},{width})/restore"),
    );
    out.push(DurRow {
        config: format!("A/layered_dag({layers},{width})/restore"),
        metrics: vec![
            ("tuples_derived", m.stats().tuples_derived as f64),
            ("snapshot_bytes", snapshot_bytes as f64),
            ("save_ms", save_ms),
            ("restore_ms", restore_ms),
            ("recompute_ms", recompute_ms),
            ("restore_speedup", speedup),
        ],
    });
    Ok(out)
}

/// The query-cache group: per-query latency of the cached magic views
/// ([`Server::query`]) against the cold batch magic transform on the
/// headline >10^6-tuple E1/E5 workloads, plus view memory against the
/// full base materialization. Every served answer — cold, cached, and
/// after churn rounds — is compared bit-for-bit against a from-scratch
/// magic transform of the current EDB; non-smoke runs additionally gate
/// cached-after-churn at ≥10x faster than the cold batch and view
/// memory at <10% of the base store. Any violation propagates as `Err`
/// (→ process exit 2).
fn query_cache_rows(smoke: bool) -> Result<Vec<DurRow>, String> {
    let mut out = Vec::new();

    // The from-scratch oracle: the goal is already baked into `p`, so
    // transform and batch-evaluate over the mirrored EDB.
    let oracle = |p: &Program, edb: &Database| -> Vec<Tuple> {
        let magic = magic_transform(p).expect("transformable goal");
        answer(&magic.program, edb, Strategy::SemiNaive).0.sorted()
    };
    let runs = if smoke { 2 } else { 3 };

    // One workload's sweep: cold batch / cold view / cached hit, then
    // per-churn-round (apply + post-churn query latency + oracle).
    let mut sweep = |experiment: &'static str,
                     config: String,
                     p: &Program,
                     edb: &mut Database,
                     server: &Server,
                     rounds: Vec<ChurnRound>|
     -> Result<(), String> {
        let goal = p.goal.clone();
        let (cold_batch_ms, want) = timed(runs, || oracle(p, edb));

        let (cold_view_ms, got) = timed(1, || server.query(&goal).sorted());
        if got != want {
            return Err(format!("query_cache/{config}/cold: answers drift from batch magic"));
        }
        let s = server.cache_stats();
        if s.template_compiles != 1 || s.misses != 1 {
            return Err(format!(
                "query_cache/{config}/cold: want one compile and one miss, got {} / {}",
                s.template_compiles, s.misses
            ));
        }
        let (cached_ms, got) = timed(runs, || server.query(&goal).sorted());
        if got != want {
            return Err(format!("query_cache/{config}/cached: answers drift from batch magic"));
        }

        // Churn rounds: the writer's round syncs the views, so the
        // post-churn query must be a read-path hit (no new miss), and
        // its answers must match a fresh transform of the mutated EDB.
        let mut churn_ms = 0.0;
        let mut after_ms = 0.0;
        for (i, (round, mirror)) in rounds.iter().enumerate() {
            let (apply_ms, _) = timed(1, || server.apply(round));
            for (pred, t, insert) in mirror {
                if *insert {
                    edb.insert(*pred, t.clone());
                } else {
                    edb.remove(*pred, t);
                }
            }
            let misses0 = server.cache_stats().misses;
            let want = oracle(p, edb);
            let (q_ms, got) = timed(runs, || server.query(&goal).sorted());
            if got != want {
                return Err(format!(
                    "query_cache/{config}/churn{i}: answers drift from batch magic"
                ));
            }
            if server.cache_stats().misses != misses0 {
                return Err(format!(
                    "query_cache/{config}/churn{i}: post-churn query rebuilt the view \
                     (want a read-path hit — rounds sync views in-line)"
                ));
            }
            churn_ms += apply_ms;
            after_ms = q_ms; // last round's post-churn latency
        }

        let view_words = server.cache_view_words();
        let base_words = server.mem_stats().total_words();
        let view_frac = view_words as f64 / base_words as f64;
        let speedup = cold_batch_ms / after_ms;
        if !smoke {
            if speedup < 10.0 {
                return Err(format!(
                    "query_cache/{config}: cached-after-churn {after_ms:.3}ms vs cold batch \
                     {cold_batch_ms:.3}ms — only {speedup:.1}x, want ≥10x"
                ));
            }
            if view_frac >= 0.10 {
                return Err(format!(
                    "query_cache/{config}: views hold {view_words} words vs base {base_words} \
                     ({:.1}%), want <10%",
                    view_frac * 100.0
                ));
            }
        }
        let s = server.cache_stats();
        println!(
            "qc   {config:<28} answers={:<8} cold_batch={cold_batch_ms:>9.2}ms cold_view={cold_view_ms:>9.2}ms cached={cached_ms:>9.3}ms after_churn={after_ms:>9.3}ms speedup={speedup:>7.1}x views={:.1}%",
            want.len(),
            view_frac * 100.0,
        );
        out.push(DurRow {
            config: format!("{experiment}/{config}"),
            metrics: vec![
                ("answers", want.len() as f64),
                ("cold_batch_ms", cold_batch_ms),
                ("cold_view_ms", cold_view_ms),
                ("cached_ms", cached_ms),
                ("churn_rounds", rounds.len() as f64),
                ("churn_apply_ms", churn_ms),
                ("cached_after_churn_ms", after_ms),
                ("speedup_vs_cold_batch", speedup),
                ("view_words", view_words as f64),
                ("base_words", base_words as f64),
                ("view_over_base", view_frac),
                ("template_compiles", s.template_compiles as f64),
                ("hits", s.hits as f64),
                ("syncs", s.syncs as f64),
            ],
        });
        Ok(())
    };

    // E1: the >10^6-tuple closure; the bound view holds only
    // `anc(john, ·)`. Churn: a fresh 1%-of-input chain off the root,
    // inserted then half-retracted (exercising DRed in the views).
    {
        let (layers, width, k) = if smoke { (6usize, 4usize, 4usize) } else { (72, 20, 288) };
        let src = "?- anc(john, Y).\n\
                   anc(X, Y) :- par(X, Y).\n\
                   anc(X, Y) :- anc(X, Z), par(Z, Y).";
        let mut p = parse_program(src).unwrap();
        let par = p.symbols.get_predicate("par").unwrap();
        let mut edb = workload::layered_dag(&mut p, "par", "john", layers, width);
        let mut chain: Vec<Tuple> = Vec::with_capacity(k);
        let mut prev = p.symbols.get_constant("john").unwrap();
        for i in 0..k {
            let c = p.symbols.constant(&format!("live{i}"));
            chain.push(vec![prev, c]);
            prev = c;
        }
        let server = Server::from_database(&p, &edb, Strategy::SemiNaive);
        let mut insert_round = UpdateRound::new();
        let mut insert_mirror = Vec::new();
        for t in &chain {
            insert_round = insert_round.insert(par, t.clone());
            insert_mirror.push((par, t.clone(), true));
        }
        let mut retract_round = UpdateRound::new();
        let mut retract_mirror = Vec::new();
        for t in &chain[k / 2..] {
            retract_round = retract_round.retract(par, t.clone());
            retract_mirror.push((par, t.clone(), false));
        }
        sweep(
            "e1",
            format!("A/layered_dag({layers},{width})"),
            &p,
            &mut edb,
            &server,
            vec![(insert_round, insert_mirror), (retract_round, retract_mirror)],
        )?;
    }

    // E5: 10^6 noise pairs the magic views never touch; the full base
    // materialization derives a p fact per pair. Churn: cut the b1
    // chain's last link (answers vanish), then splice it back alongside
    // fresh noise (answers return; the views skip the noise).
    {
        let (layers, noise, k) = if smoke { (8usize, 40usize, 4usize) } else { (20, 1_000_000, 64) };
        let src = "?- p(c, Y).\n\
                   p(X, Y) :- b1(X, X1), b2(X1, Y).\n\
                   p(X, Y) :- b1(X, X1), p(X1, Y1), b2(Y1, Y).";
        let mut p = parse_program(src).unwrap();
        let b1 = p.symbols.get_predicate("b1").unwrap();
        let b2 = p.symbols.get_predicate("b2").unwrap();
        let mut edb = workload::layered_b1_b2(&mut p, "c", layers, noise);
        let cut: Tuple = vec![
            p.symbols.get_constant(&format!("u{}", layers - 1)).unwrap(),
            p.symbols.get_constant(&format!("u{layers}")).unwrap(),
        ];
        let mut fresh: Vec<(selprop_datalog::ast::Pred, Tuple)> = Vec::with_capacity(2 * k);
        for i in 0..k {
            let a = p.symbols.constant(&format!("qa{i}"));
            let b = p.symbols.constant(&format!("qb{i}"));
            fresh.push((b1, vec![a, b]));
            fresh.push((b2, vec![b, a]));
        }
        let server = Server::from_database(&p, &edb, Strategy::SemiNaive);
        let cut_round = UpdateRound::new().retract(b1, cut.clone());
        let mut splice_round = UpdateRound::new().insert(b1, cut.clone());
        let mut splice_mirror = vec![(b1, cut.clone(), true)];
        for (pred, t) in &fresh {
            splice_round = splice_round.insert(*pred, t.clone());
            splice_mirror.push((*pred, t.clone(), true));
        }
        sweep(
            "e5",
            format!("magic_view/{layers}x{noise}"),
            &p,
            &mut edb,
            &server,
            vec![
                (cut_round, vec![(b1, cut, false)]),
                (splice_round, splice_mirror),
            ],
        )?;
    }
    Ok(out)
}

/// Per-op stats: the counter delta between two cumulative readings of a
/// materialization's lifetime stats.
/// The join-planner group: an A/B of [`PlannerConfig::default`]
/// (selectivity-planned body order, staged-head pruning, productive
/// firing counting, TC kernel) against [`PlannerConfig::legacy`] (the
/// pre-planner engine, bit-for-bit) on the two 10⁶-tuple headline
/// workloads. Each side is cross-checked against the reference
/// evaluator *under the same config*, and the two sides' models are
/// checked against each other. Gates (non-smoke): firings per distinct
/// tuple on the E1 closure must drop ≥3x under the planner, and the
/// planner must not regress wall time on either workload. Any
/// violation propagates as `Err` (→ process exit 2).
fn planner_rows(smoke: bool) -> Result<Vec<DurRow>, String> {
    const SRC_A: &str =
        "?- anc(john, Y).\nanc(X, Y) :- par(X, Y).\nanc(X, Y) :- anc(X, Z), par(Z, Y).";
    const SRC_E5: &str = "?- p(c, Y).\n\
                          p(X, Y) :- b1(X, X1), b2(X1, Y).\n\
                          p(X, Y) :- b1(X, X1), p(X1, Y1), b2(Y1, Y).";
    let runs = if smoke { 1 } else { 2 };
    let mut out = Vec::new();

    let mut cases: Vec<(String, Program, Database, bool)> = Vec::new();
    {
        let (layers, width) = if smoke { (6, 4) } else { (72, 20) };
        let mut p = parse_program(SRC_A).unwrap();
        let db = workload::layered_dag(&mut p, "par", "john", layers, width);
        cases.push((format!("e1/A/layered_dag({layers},{width})"), p, db, true));
    }
    {
        let (layers, noise) = if smoke { (8, 40) } else { (20, 1_000_000) };
        let mut p = parse_program(SRC_E5).unwrap();
        let db = workload::layered_b1_b2(&mut p, "c", layers, noise);
        cases.push((format!("e5/original/{layers}x{noise}"), p, db, false));
    }

    for (config, p, db, e1_firings_gate) in cases {
        // The engine side follows `SELPROP_THREADS` (CI runs this group
        // sequentially and at 4 threads); the reference side is always
        // sequential — the parallel engine is specified to be
        // counter-identical, so the cross-check holds either way.
        let strat = strategy_from_env();
        let side = |tag: &str,
                        cfg: PlannerConfig|
         -> Result<(f64, EvalStats, Database), String> {
            let label = format!("planner/{config}/{tag}");
            let (wall_ms, result) = timed(runs, || evaluate_cfg(&p, &db, strat, cfg));
            let spec = reference::evaluate_cfg(&p, &db, Strategy::SemiNaive, cfg);
            if result.stats != spec.stats {
                return Err(format!(
                    "{label}: counter drift vs reference\n  got:  {:?}\n  want: {:?}",
                    result.stats, spec.stats
                ));
            }
            models_equal(&label, &result.idb, &spec.idb)?;
            Ok((wall_ms, result.stats, result.idb))
        };
        let (off_wall, off, off_model) = side("off", PlannerConfig::legacy())?;
        let (on_wall, on, on_model) = side("on", PlannerConfig::default())?;
        models_equal(&format!("planner/{config}/on-vs-off"), &on_model, &off_model)?;

        // TC-kernel observability: one instrumented build under the
        // default config (`evaluate_cfg` does not expose the report).
        let m = Materialization::from_database_with(&p, &db, Strategy::SemiNaive, PlannerConfig::default());
        let report = m.planner_report();

        let off_fpd = off.rule_firings as f64 / off.tuples_derived as f64;
        let on_fpd = on.rule_firings as f64 / on.tuples_derived as f64;
        let reduction = off_fpd / on_fpd;
        println!(
            "plan {config:<34} firings/distinct off={off_fpd:>6.2} on={on_fpd:>6.2} ({reduction:>5.1}x) probes off={:<9} on={:<9} tc_hits={} wall off={off_wall:>8.2}ms on={on_wall:>8.2}ms",
            off.join_probes, on.join_probes, report.tc_hits,
        );
        out.push(DurRow {
            config,
            metrics: vec![
                ("firings_off", off.rule_firings as f64),
                ("firings_on", on.rule_firings as f64),
                ("probes_off", off.join_probes as f64),
                ("probes_on", on.join_probes as f64),
                ("tuples_derived", on.tuples_derived as f64),
                ("firings_per_distinct_off", off_fpd),
                ("firings_per_distinct_on", on_fpd),
                ("firings_reduction", reduction),
                ("wall_ms_off", off_wall),
                ("wall_ms_on", on_wall),
                ("tc_kernel_hits", report.tc_hits as f64),
                ("tc_kernel_rows", report.tc_rows as f64),
                ("index_keys", report.index_keys as f64),
                ("index_rows", report.index_rows as f64),
            ],
        });
        let gated = &out.last().expect("just pushed").config;
        if !smoke {
            if e1_firings_gate && reduction < 3.0 {
                return Err(format!(
                    "planner/{gated}: firings-per-distinct reduction {reduction:.2}x below the 3x gate (off {off_fpd:.2}, on {on_fpd:.2})"
                ));
            }
            if on_wall > off_wall * 1.25 {
                return Err(format!(
                    "planner/{gated}: wall-time regression ({on_wall:.1}ms planned vs {off_wall:.1}ms legacy)"
                ));
            }
        }
    }
    Ok(out)
}

/// The storage-layout group: an A/B of the segmented posting layout
/// ([`PlannerConfig::default`], layout B) against the chains-only
/// layout (`segmented: false`, layout A — the pre-segment engine's
/// storage, kept selectable exactly for this baseline) on the two
/// 10⁶-tuple headline workloads. Both sides are cross-checked against
/// the reference evaluator under their own config; the sides are then
/// checked against each other and against [`PlannerConfig::legacy`]
/// for model identity, and a [`Materialization`] build per side checks
/// row ids + justifications bit-for-bit via [`Materialization::provenance`]
/// (provenance stores row data in row-id order, so equality covers
/// enumeration order too). Gates (non-smoke): the counters must be
/// *identical* between layouts (the segment fold may not change what
/// the engine does, only where rows live), and the segmented layout
/// must be ≥1.3x faster on wall clock. Any violation propagates as
/// `Err` (→ process exit 2).
fn storage_rows(smoke: bool) -> Result<Vec<DurRow>, String> {
    const SRC_A: &str =
        "?- anc(john, Y).\nanc(X, Y) :- par(X, Y).\nanc(X, Y) :- anc(X, Z), par(Z, Y).";
    const SRC_E5: &str = "?- p(c, Y).\n\
                          p(X, Y) :- b1(X, X1), b2(X1, Y).\n\
                          p(X, Y) :- b1(X, X1), p(X1, Y1), b2(Y1, Y).";
    let runs = if smoke { 1 } else { 3 };
    let mut out = Vec::new();

    let mut cases: Vec<(String, Program, Database)> = Vec::new();
    {
        let (layers, width) = if smoke { (6, 4) } else { (72, 20) };
        let mut p = parse_program(SRC_A).unwrap();
        let db = workload::layered_dag(&mut p, "par", "john", layers, width);
        cases.push((format!("e1/A/layered_dag({layers},{width})"), p, db));
    }
    {
        let (layers, noise) = if smoke { (8, 40) } else { (20, 1_000_000) };
        let mut p = parse_program(SRC_E5).unwrap();
        let db = workload::layered_b1_b2(&mut p, "c", layers, noise);
        cases.push((format!("e5/original/{layers}x{noise}"), p, db));
    }

    for (config, p, db) in cases {
        // The engine side follows `SELPROP_THREADS` (CI runs this group
        // sequentially and at 4 threads); the reference side is always
        // sequential.
        let strat = strategy_from_env();
        let seg_cfg = PlannerConfig::default();
        let chain_cfg = PlannerConfig { segmented: false, ..PlannerConfig::default() };
        let side = |tag: &str, cfg: PlannerConfig| -> Result<(f64, EvalStats, Database), String> {
            let label = format!("storage/{config}/{tag}");
            // Timed: the fixpoint proper (`answer_cfg` skips the
            // O(model) `Database` conversion, which would dilute a
            // constant-factor storage win identically on both sides).
            let (wall_ms, (answers, stats)) = timed(runs, || {
                let (ans, stats) = answer_cfg(&p, &db, strat, cfg);
                (ans.len(), stats)
            });
            // Untimed: the model read-out and the reference cross-check.
            let result = evaluate_cfg(&p, &db, strat, cfg);
            if result.stats != stats {
                return Err(format!(
                    "{label}: counter drift between answer and model read-outs\n  got:  {stats:?}\n  want: {:?}",
                    result.stats
                ));
            }
            let spec = reference::evaluate_cfg(&p, &db, Strategy::SemiNaive, cfg);
            if result.stats != spec.stats {
                return Err(format!(
                    "{label}: counter drift vs reference\n  got:  {:?}\n  want: {:?}",
                    result.stats, spec.stats
                ));
            }
            models_equal(&label, &result.idb, &spec.idb)?;
            let want_answers = spec
                .idb
                .relation(p.goal.pred)
                .map(|rel| apply_goal(&p.goal, rel).len())
                .unwrap_or(0);
            if answers != want_answers {
                return Err(format!(
                    "{label}: answer drift (got {answers}, want {want_answers})"
                ));
            }
            Ok((wall_ms, stats, result.idb))
        };
        let (chain_wall, chain_stats, chain_model) = side("chains", chain_cfg)?;
        let (seg_wall, seg_stats, seg_model) = side("segmented", seg_cfg)?;
        if seg_stats != chain_stats {
            return Err(format!(
                "storage/{config}: counter drift between layouts\n  segmented: {seg_stats:?}\n  chains:    {chain_stats:?}"
            ));
        }
        models_equal(&format!("storage/{config}/seg-vs-chains"), &seg_model, &chain_model)?;
        let (_, legacy_result) = timed(1, || evaluate_cfg(&p, &db, strat, PlannerConfig::legacy()));
        models_equal(&format!("storage/{config}/seg-vs-legacy"), &seg_model, &legacy_result.idb)?;

        // Row-id + justification identity: provenance stores rows in
        // row-id order with their recorded justifications, so equality
        // here is the bit-for-bit layout oracle.
        let ma = Materialization::from_database_with(&p, &db, Strategy::SemiNaive, seg_cfg);
        let mb = Materialization::from_database_with(&p, &db, Strategy::SemiNaive, chain_cfg);
        let (pa, pb) = (ma.provenance(), mb.provenance());
        if pa != pb {
            return Err(format!(
                "storage/{config}: row-id/justification drift between layouts"
            ));
        }
        pa.check(&p)
            .map_err(|e| format!("storage/{config}: provenance check: {e}"))?;
        let (sa, sb) = (ma.mem_stats(), mb.mem_stats());
        if sb.seg_words != 0 {
            return Err(format!(
                "storage/{config}: chains-only layout reports {} segment words",
                sb.seg_words
            ));
        }

        let speedup = chain_wall / seg_wall;
        println!(
            "stor {config:<34} wall chains={chain_wall:>8.2}ms segmented={seg_wall:>8.2}ms ({speedup:>5.2}x) probes={:<9} seg_words={} index_words={}",
            seg_stats.join_probes, sa.seg_words, sa.index_words,
        );
        out.push(DurRow {
            config,
            metrics: vec![
                ("wall_ms_chains", chain_wall),
                ("wall_ms_segmented", seg_wall),
                ("layout_speedup", speedup),
                ("tuples_derived", seg_stats.tuples_derived as f64),
                ("join_probes", seg_stats.join_probes as f64),
                ("seg_words", sa.seg_words as f64),
                ("index_words_segmented", sa.index_words as f64),
                ("index_words_chains", sb.index_words as f64),
            ],
        });
        let gated = &out.last().expect("just pushed").config;
        if !smoke && speedup < 1.3 {
            return Err(format!(
                "storage/{gated}: layout speedup {speedup:.2}x below the 1.3x gate ({chain_wall:.1}ms chains vs {seg_wall:.1}ms segmented)"
            ));
        }
    }
    Ok(out)
}

/// Detected CPU resources: logical count from `available_parallelism`
/// and the affinity mask from `/proc/self/status` (`Cpus_allowed_list`),
/// so the long-standing "thread rows measured on a 1-CPU box" caveat is
/// machine-readable next to the wall-clock numbers it qualifies.
fn cpu_info() -> (usize, String) {
    let count = std::thread::available_parallelism().map_or(0, std::num::NonZeroUsize::get);
    let affinity = std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find_map(|l| l.strip_prefix("Cpus_allowed_list:").map(|v| v.trim().to_owned()))
        })
        .unwrap_or_else(|| "unknown".to_owned());
    (count, affinity)
}

fn diff_stats(after: EvalStats, before: EvalStats) -> EvalStats {
    EvalStats {
        iterations: after.iterations - before.iterations,
        rule_firings: after.rule_firings - before.rule_firings,
        tuples_derived: after.tuples_derived - before.tuples_derived,
        join_probes: after.join_probes - before.join_probes,
    }
}

fn render_json(
    rows: &[Row],
    durability: &[DurRow],
    query_cache: &[DurRow],
    planner: &[DurRow],
    storage: &[DurRow],
) -> String {
    let (cpus, affinity) = cpu_info();
    let mut json = format!(
        "{{\n  \"generated_by\": \"cargo run --release -p selprop-bench --bin record\",\n  \"engine\": \"columnar-watermark\",\n  \"machine\": {{\"cpus\": {cpus}, \"cpus_allowed_list\": \"{affinity}\"}},\n  \"experiments\": [\n"
    );
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"experiment\": \"{}\", \"config\": \"{}\", \"threads\": {}, \"answers\": {}, \"iterations\": {}, \"rule_firings\": {}, \"tuples_derived\": {}, \"join_probes\": {}, \"wall_ms_mean\": {:.3}",
            r.experiment,
            r.config,
            r.threads,
            r.answers,
            r.stats.iterations,
            r.stats.rule_firings,
            r.stats.tuples_derived,
            r.stats.join_probes,
            r.wall_ms,
        );
        if let Some(ref_ms) = r.reference_wall_ms {
            let _ = write!(json, ", \"wall_ms_reference\": {ref_ms:.3}");
        }
        let _ = write!(json, "}}{}", if i + 1 == rows.len() { "" } else { "," });
        json.push('\n');
    }
    for (section, group) in [
        ("durability", durability),
        ("query_cache", query_cache),
        ("planner", planner),
        ("storage", storage),
    ] {
        let _ = write!(json, "  ],\n  \"{section}\": [\n");
        for (i, r) in group.iter().enumerate() {
            let _ = write!(json, "    {{\"config\": \"{}\"", r.config);
            for (name, value) in &r.metrics {
                let _ = write!(json, ", \"{name}\": {value:.3}");
            }
            let _ = write!(json, "}}{}", if i + 1 == group.len() { "" } else { "," });
            json.push('\n');
        }
    }
    json.push_str("  ]\n}\n");
    json
}

/// Runs the failure-path self-test: a deliberately corrupted reference
/// counter must surface as `Err` from the measurement pipeline.
fn corrupt_cross_check() -> Result<(), String> {
    let mut p = parse_program(
        "?- anc(john, Y).\nanc(X, Y) :- par(X, Y).\nanc(X, Y) :- anc(X, Z), par(Z, Y).",
    )
    .unwrap();
    let db = workload::random_forest(&mut p, "par", "john", 30, 11);
    measure("e1", "corrupt-self-test".to_owned(), &p, &db, 1, true).map(|_| ())
}

fn record(smoke: bool) -> Result<String, String> {
    let mut rows = Vec::new();
    println!("== recording evaluation baseline (storage engine vs reference) ==");
    e1_rows(&mut rows, smoke)?;
    e5_rows(&mut rows, smoke)?;
    prov_and_shard_rows(&mut rows, smoke)?;
    incremental_rows(&mut rows, smoke)?;
    server_rows(&mut rows, smoke)?;
    let durability = durability_rows(smoke)?;
    let query_cache = query_cache_rows(smoke)?;
    let planner = planner_rows(smoke)?;
    let storage = storage_rows(smoke)?;
    let json = render_json(&rows, &durability, &query_cache, &planner, &storage);
    let path = if smoke {
        // Per-process name: concurrent smoke runs must not race on one file.
        std::env::temp_dir()
            .join(format!("BENCH_eval_smoke_{}.json", std::process::id()))
            .to_string_lossy()
            .into_owned()
    } else {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_eval.json").to_owned()
    };
    std::fs::write(&path, json).map_err(|e| format!("write {path}: {e}"))?;
    Ok(path)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--corrupt-cross-check") {
        // Self-test of the failure path: this MUST exit nonzero.
        match corrupt_cross_check() {
            Ok(()) => {
                eprintln!("cross-check FAILED to detect deliberate corruption");
                std::process::exit(3);
            }
            Err(e) => {
                eprintln!("cross-check mismatch (expected by --corrupt-cross-check): {e}");
                std::process::exit(2);
            }
        }
    }
    let smoke = args.iter().any(|a| a == "--smoke");
    if args.iter().any(|a| a == "--planner-only") {
        match planner_rows(smoke) {
            Ok(_) => {
                println!("\nplanner group OK");
                return;
            }
            Err(e) => {
                eprintln!("cross-check mismatch: {e}");
                std::process::exit(2);
            }
        }
    }
    if args.iter().any(|a| a == "--storage-only") {
        match storage_rows(smoke) {
            Ok(_) => {
                println!("\nstorage group OK");
                return;
            }
            Err(e) => {
                eprintln!("cross-check mismatch: {e}");
                std::process::exit(2);
            }
        }
    }
    match record(smoke) {
        Ok(path) => println!("\nwrote {path}"),
        Err(e) => {
            eprintln!("cross-check mismatch: {e}");
            std::process::exit(2);
        }
    }
}
