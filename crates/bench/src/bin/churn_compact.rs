//! The CI durability smoke: a long interleaved insert/retract churn
//! loop over the E1 ancestor closure, with policy-driven compaction,
//! gating the bounded-memory and no-drift contracts. **Any violation
//! terminates the process with exit code 2** — mirroring the `record`
//! and `server_churn` cross-check discipline, so CI can rely on it.
//!
//! ```text
//! cargo run --release -p selprop-bench --bin churn_compact
//! ```
//!
//! What one run proves:
//!
//! - **bounded memory**: across every churn round, peak
//!   tuple + index + justification words stay within 2x of a freshly
//!   evaluated store of the same final state;
//! - **no drift**: after the full loop the store equals the
//!   from-scratch reference model, and its recorded justifications
//!   still pass `Provenance::check`;
//! - **durable snapshots**: the final store round-trips through the
//!   snapshot codec bit-for-bit;
//! - **the control**: the same churn with compaction disabled grows
//!   past the gate — the growth compaction is there to prevent.
//!
//! Flags (used by `tests/churn_compact_check.rs`):
//!
//! - `--smoke`: fewer rounds and a smaller chain (the CI
//!   configuration);
//! - `--corrupt-growth`: applies the 2x gate to the no-compaction
//!   control run, proving the gate really propagates to exit 2.
//!
//! The strategy follows `SELPROP_THREADS` (see
//! [`selprop_bench::strategy_from_env`]), so CI can sweep thread counts
//! with the same binary.

use selprop_bench::strategy_from_env;
use selprop_datalog::db::Tuple;
use selprop_datalog::eval::Strategy;
use selprop_datalog::reference;
use selprop_datalog::{parse_program, CompactionPolicy, Database, Materialization, Program};

const SRC_A: &str =
    "?- anc(john, Y).\nanc(X, Y) :- par(X, Y).\nanc(X, Y) :- anc(X, Z), par(Z, Y).";

struct ChurnReport {
    peak_words: usize,
    quarter_words: usize,
    end_words: usize,
    compactions: u64,
    rounds: usize,
}

/// Runs `rounds` interleaved retract/insert rounds (each round kills
/// one chain edge and immediately restores it, churning the closure
/// span above it) and tracks the peak row-addressed footprint.
fn churn_loop(
    p: &Program,
    db0: &Database,
    edges: &[Tuple],
    rounds: usize,
    policy: Option<CompactionPolicy>,
    strategy: Strategy,
) -> Result<(Materialization, ChurnReport), String> {
    let par = p.symbols.get_predicate("par").unwrap();
    let mut m = Materialization::from_database(p, db0, strategy);
    m.set_compaction_policy(policy);
    let n = edges.len();
    let mut peak = 0usize;
    let mut quarter = 0usize;
    let mut end = 0usize;
    for i in 0..rounds {
        // Rotate the victim through the chain's tail region so the
        // killed closure span varies round to round.
        let victim = n - 1 - (i % 4);
        if m.retract_facts(par, &edges[victim..=victim]) != 1 {
            return Err(format!("round {i}: edge {victim} was not live to retract"));
        }
        if m.insert_facts(par, &edges[victim..=victim]) != 1 {
            return Err(format!("round {i}: edge {victim} did not re-insert"));
        }
        let words = m.mem_stats().row_words();
        peak = peak.max(words);
        if i == rounds / 4 {
            quarter = words;
        }
        end = words;
    }
    let compactions = m.compactions();
    Ok((
        m,
        ChurnReport {
            peak_words: peak,
            quarter_words: quarter,
            end_words: end,
            compactions,
            rounds,
        },
    ))
}

fn run(rounds: usize, n: usize, corrupt_growth: bool) -> Result<(), String> {
    let strategy = strategy_from_env();
    let mut p = parse_program(SRC_A).expect("valid program");
    let par = p.symbols.get_predicate("par").unwrap();
    let mut prev = p.symbols.constant("john");
    let edges: Vec<Tuple> = (1..=n)
        .map(|i| {
            let c = p.symbols.constant(&format!("c{i}"));
            let t = vec![prev, c];
            prev = c;
            t
        })
        .collect();
    let mut db0 = Database::new();
    for e in &edges {
        db0.insert(par, e.clone());
    }

    // The gate's baseline: a freshly evaluated store of the same state
    // (every churn round restores the edge it kills, so the final EDB
    // is db0 again).
    let fresh = Materialization::from_database(&p, &db0, strategy);
    let fresh_words = fresh.mem_stats().row_words();

    let policy = CompactionPolicy {
        min_dead_rows: 32,
        dead_percent: 30,
    };
    let (m, with) = churn_loop(&p, &db0, &edges, rounds, Some(policy), strategy)?;

    // The no-compaction control: capped rounds (its cost grows with its
    // footprint), still enough to show the growth.
    let control_rounds = rounds.min(1_000);
    let (_, without) = churn_loop(&p, &db0, &edges, control_rounds, None, strategy)?;

    // No drift: the churned store equals the from-scratch reference of
    // the (restored) original database, justifications included.
    let spec = reference::evaluate(&p, &db0, Strategy::SemiNaive);
    if m.idb_database().sorted_models() != spec.idb.sorted_models() {
        return Err("post-churn IDB model diverges from the from-scratch reference".into());
    }
    if m.answer().sorted() != reference::answer(&p, &db0, Strategy::SemiNaive).0.sorted() {
        return Err("post-churn goal answer diverges from the reference".into());
    }
    m.provenance()
        .check(&p)
        .map_err(|e| format!("post-churn justifications invalid: {e:?}"))?;

    // The frozen posting pools are live state under the default
    // segmented layout (the closure index is large enough to freeze)
    // and they are *inside* the gated footprint: `row_words` counts
    // `index_words`, which includes `seg_words`. Assert both, so the
    // bounded-memory gate provably covers the segment storage.
    let mem = m.mem_stats();
    if mem.seg_words == 0 {
        return Err(
            "segmented layout produced no frozen posting pool words on the churned store".into(),
        );
    }
    if mem.seg_words > mem.index_words {
        return Err(format!(
            "seg_words {} not contained in index_words {} — the 2x gate would miss segment growth",
            mem.seg_words, mem.index_words
        ));
    }

    // Durable snapshots: the final store round-trips bit-for-bit.
    let bytes = m.to_bytes();
    let m2 = Materialization::from_bytes(&bytes)
        .map_err(|e| format!("self-produced snapshot failed to restore: {e}"))?;
    if m2.to_bytes() != bytes {
        return Err("snapshot round-trip is not bit-for-bit".into());
    }

    // Bounded memory: the 2x gate (optionally aimed at the control to
    // self-test the failure path).
    let gated = if corrupt_growth { &without } else { &with };
    let ratio = gated.peak_words as f64 / fresh_words as f64;
    let seg = mem.seg_words;
    println!(
        "churn_compact: rounds={} chain={n} strategy={strategy:?}\n\
         fresh store:        {fresh_words} words\n\
         with compaction:    peak={} words (ratio {:.2}x), {} compactions, seg_pool={seg} words\n\
         without compaction: peak={} words over {} rounds (quarter={} end={})",
        with.rounds,
        with.peak_words,
        with.peak_words as f64 / fresh_words as f64,
        with.compactions,
        without.peak_words,
        without.rounds,
        without.quarter_words,
        without.end_words,
    );
    if ratio > 2.0 {
        return Err(format!(
            "peak churn footprint {} words exceeds 2x the fresh store ({fresh_words} words): {ratio:.2}x",
            gated.peak_words
        ));
    }
    if with.compactions == 0 {
        return Err("the policy never triggered a compaction across the churn loop".into());
    }
    // The control demonstrates the growth compaction prevents: strictly
    // above the compacting run's peak, and still growing between the
    // quarter mark and the end.
    if without.peak_words <= with.peak_words {
        return Err(format!(
            "control (no compaction, {} rounds) peaked at {} words, not above the compacting run's {} — growth not demonstrated",
            without.rounds, without.peak_words, with.peak_words
        ));
    }
    if without.end_words <= without.quarter_words {
        return Err(
            "control footprint stopped growing between the quarter mark and the end".into(),
        );
    }
    println!(
        "churn_compact OK: bounded at {:.2}x of fresh with compaction; control grew to {:.2}x without",
        with.peak_words as f64 / fresh_words as f64,
        without.peak_words as f64 / fresh_words as f64,
    );
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let corrupt_growth = args.iter().any(|a| a == "--corrupt-growth");
    let (rounds, n) = if smoke { (400, 32) } else { (10_000, 64) };
    match run(rounds, n, corrupt_growth) {
        Ok(()) => {
            if corrupt_growth {
                eprintln!("growth gate FAILED to reject the no-compaction control");
                std::process::exit(3);
            }
        }
        Err(e) => {
            if corrupt_growth {
                eprintln!("growth gate rejection (expected by --corrupt-growth): {e}");
                std::process::exit(2);
            }
            eprintln!("durability violation: {e}");
            std::process::exit(2);
        }
    }
}
