//! E3 — Theorem 3.3(2): the diagonal selection `p(X, X)`.
//!
//! Finite `L(H)`: the tableaux rewrite is equivalent and converges in a
//! bounded number of iterations on unions of cycles of any size.
//! Infinite `L(H)`: the decision procedure answers `Impossible` with a
//! pumping certificate — benchmarked as the (cheap) decision itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use selprop_bench::{row, run};
use selprop_core::chain::ChainProgram;
use selprop_core::propagate::{propagate, Propagation};
use selprop_core::workload;
use selprop_datalog::eval::Strategy;

const FINITE: &str = "?- p(X, X).\n\
                      p(X, Y) :- b(X, Y).\n\
                      p(X, Y) :- b(X, Z1), b(Z1, Z2), b(Z2, Y).";
const INFINITE: &str = "?- p(X, X).\n\
                        p(X, Y) :- b(X, Y).\n\
                        p(X, Y) :- p(X, Z), b(Z, Y).";

fn bench(c: &mut Criterion) {
    println!("\n== E3: diagonal selection ==");
    let finite = ChainProgram::parse(FINITE).unwrap();
    let Propagation::Propagated { program: tableaux, .. } = propagate(&finite).unwrap() else {
        panic!("finite diagonal must propagate");
    };
    let mut group = c.benchmark_group("e3_pxx");
    group.sample_size(10);
    for num_cycles in [10usize, 40, 160] {
        let lengths: Vec<usize> = (0..num_cycles).map(|i| 1 + (i % 7)).collect();
        let mut p1 = finite.program.clone();
        let db1 = workload::cycles(&mut p1, "b", &lengths);
        let mut p2 = tableaux.clone();
        let db2 = workload::cycles(&mut p2, "b", &lengths);
        let (a1, s1) = run(&p1, &db1, Strategy::SemiNaive);
        let (a2, s2) = run(&p2, &db2, Strategy::SemiNaive);
        assert_eq!(a1, a2, "tableaux equivalence");
        row("finite/original", num_cycles, a1, &s1);
        row("finite/tableaux", num_cycles, a2, &s2);
        assert!(
            s2.iterations <= 2,
            "tableaux program is nonrecursive: bounded iterations"
        );
        group.bench_with_input(
            BenchmarkId::new("finite_original", num_cycles),
            &num_cycles,
            |b, _| b.iter(|| run(&p1, &db1, Strategy::SemiNaive)),
        );
        group.bench_with_input(
            BenchmarkId::new("finite_tableaux", num_cycles),
            &num_cycles,
            |b, _| b.iter(|| run(&p2, &db2, Strategy::SemiNaive)),
        );
    }
    // the decision itself (finite and infinite cases)
    let infinite = ChainProgram::parse(INFINITE).unwrap();
    match propagate(&infinite).unwrap() {
        Propagation::Impossible { pump } => {
            println!(
                "infinite case: Impossible with pump at '{}' (|x|+|z| = {})",
                pump.nonterminal,
                pump.pump_left.len() + pump.pump_right.len()
            );
        }
        other => panic!("expected Impossible, got {other:?}"),
    }
    group.bench_function("decide_finite", |b| b.iter(|| propagate(&finite).unwrap()));
    group.bench_function("decide_infinite", |b| b.iter(|| propagate(&infinite).unwrap()));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
