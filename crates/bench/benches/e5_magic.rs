//! E5 — Section 7: magic sets = quotients, on the paper's worked example
//! `L(H) = b1^n b2^n` over layered databases with growing noise.
//!
//! Expected shape: magic-transformed work ≈ O(relevant region);
//! naive original work grows with the whole database; the pruning factor
//! grows with the noise fraction. The envelope quotient is `b1*` for
//! every rule (the paper's magic set).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use selprop_bench::{row, run, strategy_from_env, THREAD_SWEEP};
use selprop_core::chain::ChainProgram;
use selprop_core::magic_chain::{analyze, transform};
use selprop_core::workload;
use selprop_datalog::eval::Strategy;

const SRC: &str = "?- p(c, Y).\n\
                   p(X, Y) :- b1(X, X1), b2(X1, Y).\n\
                   p(X, Y) :- b1(X, X1), p(X1, Y1), b2(Y1, Y).";

fn bench(c: &mut Criterion) {
    println!("\n== E5: magic = quotient (b1^n b2^n) ==");
    let chain = ChainProgram::parse(SRC).unwrap();
    let analysis = analyze(&chain).unwrap();
    println!(
        "envelope exact: {}; per-rule quotient states: {:?}",
        analysis.envelope_exact,
        analysis
            .rules
            .iter()
            .map(|r| r.envelope_quotient.num_states())
            .collect::<Vec<_>>()
    );
    let magic = transform(&chain).unwrap();

    // The timed sweep honors SELPROP_THREADS (parallel engine smoke in
    // CI); work counters are strategy-invariant.
    let strategy = strategy_from_env();
    let mut group = c.benchmark_group("e5_magic");
    group.sample_size(10);
    for (layers, noise) in [(10usize, 50usize), (20, 400), (40, 3200)] {
        let mut p1 = chain.program.clone();
        let db1 = workload::layered_b1_b2(&mut p1, "c", layers, noise);
        let mut p2 = magic.program.clone();
        let db2 = workload::layered_b1_b2(&mut p2, "c", layers, noise);
        let (a1, s1) = run(&p1, &db1, Strategy::SemiNaive);
        let (a2, s2) = run(&p2, &db2, Strategy::SemiNaive);
        assert_eq!(a1, a2, "magic preserves answers");
        if strategy != Strategy::SemiNaive {
            assert_eq!(run(&p1, &db1, strategy), (a1, s1), "parallel strategy drift");
            assert_eq!(run(&p2, &db2, strategy), (a2, s2), "magic parallel strategy drift");
        }
        row("original", layers * 2 + noise * 2, a1, &s1);
        row("magic", layers * 2 + noise * 2, a2, &s2);
        group.bench_with_input(
            BenchmarkId::new("original", format!("{layers}x{noise}")),
            &layers,
            |b, _| b.iter(|| run(&p1, &db1, strategy)),
        );
        group.bench_with_input(
            BenchmarkId::new("magic", format!("{layers}x{noise}")),
            &layers,
            |b, _| b.iter(|| run(&p2, &db2, strategy)),
        );
    }
    // quotient computation cost
    group.bench_function("analyze_quotients", |b| b.iter(|| analyze(&chain).unwrap()));

    // Large-scale wall-clock configuration (10^6 noise pairs, >10^6
    // derived p tuples for the untransformed program); opt-in via
    // SELPROP_LARGE=1 — `record` persists the same config with
    // reference-engine timings in BENCH_eval.json.
    if std::env::var_os("SELPROP_LARGE").is_some() {
        let (layers, noise) = (20usize, 1_000_000usize);
        let mut p1 = chain.program.clone();
        let db1 = workload::layered_b1_b2(&mut p1, "c", layers, noise);
        let mut p2 = magic.program.clone();
        let db2 = workload::layered_b1_b2(&mut p2, "c", layers, noise);
        let (a1, s1) = run(&p1, &db1, Strategy::SemiNaive);
        let (a2, s2) = run(&p2, &db2, Strategy::SemiNaive);
        assert_eq!(a1, a2, "magic preserves answers");
        row("original", layers * 2 + noise * 2, a1, &s1);
        row("magic", layers * 2 + noise * 2, a2, &s2);
        group.sample_size(2);
        group.bench_with_input(
            BenchmarkId::new("original", format!("{layers}x{noise}")),
            &layers,
            |b, _| b.iter(|| run(&p1, &db1, Strategy::SemiNaive)),
        );
        group.bench_with_input(
            BenchmarkId::new("magic", format!("{layers}x{noise}")),
            &layers,
            |b, _| b.iter(|| run(&p2, &db2, Strategy::SemiNaive)),
        );
        // Thread-scaling sweep on the untransformed large config (the
        // delta step of the recursive rule sits mid-join here, so this
        // exercises sharding with duplicated pre-delta work).
        for threads in THREAD_SWEEP {
            let strategy = Strategy::SemiNaiveParallel { threads };
            let (pa, ps) = run(&p1, &db1, strategy);
            assert_eq!((pa, ps), (a1, s1), "parallel drift at {threads}t");
            group.bench_with_input(
                BenchmarkId::new("original_threads", threads),
                &threads,
                |b, _| b.iter(|| run(&p1, &db1, strategy)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
