//! E7 — Section 5: the WS1S decision procedure.
//!
//! Expected shape: compilation cost grows (sharply) with quantifier
//! alternation depth and track count — the price of the Büchi–Elgot
//! construction; the Lemma 5.1 extraction recovers `L(H)` for monadic
//! rewrites of regular chain programs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use selprop_datalog::parser::parse_program;
use selprop_ws1s::compile::compile;
use selprop_ws1s::encode::{encode_monadic_program, extract_language};
use selprop_ws1s::syntax::{Formula, VarId};

/// A formula family with `depth` alternating FO quantifier blocks over
/// one free set variable: ∀x ∃y (x < y ∧ (x∈W ⇔ y∉W)) nested.
fn alternating(depth: usize) -> (Formula, usize) {
    let w = VarId(0);
    // tracks: 0 = W, then one per quantifier level
    let mut f = Formula::True;
    for level in (1..=depth).rev() {
        let x = VarId(level);
        let inner = if level == depth {
            Formula::In(x, w)
        } else {
            let y = VarId(level + 1);
            Formula::and(Formula::Lt(x, y), f.clone())
        };
        f = if level % 2 == 1 {
            Formula::forall_fo(x, Formula::implies(Formula::In(x, w), inner))
        } else {
            Formula::exists_fo(x, Formula::and(Formula::In(x, w), inner))
        };
    }
    (f, depth + 1)
}

fn bench(c: &mut Criterion) {
    println!("\n== E7: WS1S compilation ==");
    for depth in [1usize, 2, 3, 4] {
        let (f, tracks) = alternating(depth);
        let compiled = compile(&f, tracks, &[]);
        println!(
            "alternation depth {depth}: {} tracks, minimal DFA {} states",
            tracks,
            compiled.dfa.num_states()
        );
    }

    let mut group = c.benchmark_group("e7_ws1s");
    group.sample_size(10);
    for depth in [1usize, 2, 3] {
        let (f, tracks) = alternating(depth);
        group.bench_with_input(BenchmarkId::new("compile_alt", depth), &depth, |b, _| {
            b.iter(|| compile(&f, tracks, &[]))
        });
    }

    // Lemma 5.1 extraction on monadic programs of growing IDB count
    let programs = [
        (
            1usize,
            "?- p(Y).\np(Y) :- b(c, Y).\np(Y) :- p(Z), b(Z, Y).",
        ),
        (
            2,
            "?- q2(Y).\nq1(Y) :- b1(c, Y).\nq1(Y) :- q2(Z), b1(Z, Y).\nq2(Y) :- q1(Z), b2(Z, Y).",
        ),
        (
            3,
            "?- r3(Y).\nr1(Y) :- b1(c, Y).\nr1(Y) :- r3(Z), b1(Z, Y).\nr2(Y) :- r1(Z), b2(Z, Y).\nr3(Y) :- r2(Z), b1(Z, Y).",
        ),
    ];
    for (idbs, src) in programs {
        let h = parse_program(src).unwrap();
        let enc = encode_monadic_program(&h, "c").unwrap();
        let lang = extract_language(&enc);
        println!(
            "lemma 5.1 extraction, {} IDB(s), {} tracks → language DFA {} states",
            idbs, enc.num_tracks, lang.num_states()
        );
        group.bench_with_input(BenchmarkId::new("lemma51_extract", idbs), &idbs, |b, _| {
            b.iter(|| {
                let enc = encode_monadic_program(&h, "c").unwrap();
                extract_language(&enc)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
