//! E10 — Proposition 8.1: containment and equivalence of chain programs.
//!
//! Expected shape: decidable fragments (finite, regular/regular,
//! envelope-in-exact) are decided exactly and quickly; incomparable pairs
//! are refuted by short witnesses; the genuinely hard pair (equal
//! non-regular languages) comes back Unknown, never a false refutation.

use criterion::{criterion_group, criterion_main, Criterion};
use selprop_core::chain::ChainProgram;
use selprop_core::contain::{contained, equivalent, is_uniform, uniformize, Containment};

fn programs() -> Vec<(&'static str, ChainProgram)> {
    let sources = [
        ("A_par_plus",
         "?- anc(c, Y).\nanc(X, Y) :- par(X, Y).\nanc(X, Y) :- anc(X, Z), par(Z, Y)."),
        ("B_par_plus",
         "?- anc(c, Y).\nanc(X, Y) :- par(X, Y).\nanc(X, Y) :- par(X, Z), anc(Z, Y)."),
        ("even_paths",
         "?- e(c, Y).\ne(X, Y) :- par(X, Z), par(Z, Y).\ne(X, Y) :- e(X, Z), par(Z, W), par(W, Y)."),
        ("one_step",
         "?- p(c, Y).\np(X, Y) :- par(X, Y)."),
    ];
    sources
        .iter()
        .map(|(n, s)| (*n, ChainProgram::parse(s).unwrap()))
        .collect()
}

fn label(c: &Containment) -> &'static str {
    match c {
        Containment::Contained => "⊆",
        Containment::NotContained(_) => "⊄",
        Containment::Unknown => "?",
    }
}

fn bench(c: &mut Criterion) {
    println!("\n== E10: containment matrix (Prop 8.1) ==");
    let ps = programs();
    print!("{:<12}", "");
    for (n, _) in &ps {
        print!("{n:<12}");
    }
    println!();
    for (n1, p1) in &ps {
        print!("{n1:<12}");
        for (_, p2) in &ps {
            print!("{:<12}", label(&contained(p1, p2, 6)));
        }
        println!();
    }
    // ground truth spot checks
    let a = &ps[0].1;
    let b = &ps[1].1;
    let even = &ps[2].1;
    let one = &ps[3].1;
    assert_eq!(equivalent(a, b, 6), Containment::Contained);
    assert_eq!(contained(even, a, 6), Containment::Contained);
    assert!(matches!(contained(a, even, 6), Containment::NotContained(_)));
    assert_eq!(contained(one, a, 6), Containment::Contained);
    assert!(matches!(contained(a, one, 6), Containment::NotContained(_)));

    // uniformity round trip
    assert!(!is_uniform(a));
    let ua = uniformize(a);
    assert!(is_uniform(&ua));

    let mut group = c.benchmark_group("e10_contain");
    group.sample_size(10);
    group.bench_function("equivalent_A_B", |bch| bch.iter(|| equivalent(a, b, 6)));
    group.bench_function("contained_even_A", |bch| bch.iter(|| contained(even, a, 6)));
    group.bench_function("refute_A_one", |bch| bch.iter(|| contained(a, one, 6)));
    group.bench_function("uniformize_A", |bch| bch.iter(|| uniformize(a)));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
