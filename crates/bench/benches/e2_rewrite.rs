//! E2 — Theorem 3.3(1) "if" direction: binary chain programs vs their
//! propagated monadic rewrites, on random labeled graphs of growing size.
//!
//! Expected shape: identical answers; the monadic rewrite's work grows
//! like the reachable fringe while the binary original grows like
//! all-pairs — a widening factor in graph size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use selprop_bench::{row, run};
use selprop_core::chain::ChainProgram;
use selprop_core::propagate::{propagate, Propagation};
use selprop_core::workload;
use selprop_datalog::eval::Strategy;

const FAMILIES: [(&str, &str); 3] = [
    (
        "par_plus",
        "?- anc(c, Y).\nanc(X, Y) :- par(X, Y).\nanc(X, Y) :- anc(X, Z), par(Z, Y).",
    ),
    (
        "b1_b2star",
        "?- p(c, Y).\np(X, Y) :- b1(X, Y).\np(X, Y) :- p(X, Z), b2(Z, Y).",
    ),
    (
        "alternation",
        "?- p(c, Y).\np(X, Y) :- b1(X, X1), b2(X1, Y).\np(X, Y) :- p(X, Z), b1(Z, Z1), b2(Z1, Y).",
    ),
];

fn bench(c: &mut Criterion) {
    println!("\n== E2: binary vs propagated monadic ==");
    let mut group = c.benchmark_group("e2_rewrite");
    group.sample_size(10);
    for (name, src) in FAMILIES {
        let chain = ChainProgram::parse(src).unwrap();
        let Propagation::Propagated { program, .. } = propagate(&chain).unwrap() else {
            panic!("E2 family must propagate: {name}");
        };
        let edbs: Vec<String> = chain
            .edbs()
            .iter()
            .map(|&p| chain.program.symbols.pred_name(p).to_owned())
            .collect();
        let edb_refs: Vec<&str> = edbs.iter().map(String::as_str).collect();
        for n in [50usize, 200, 800] {
            let m = n * 3;
            let mut p1 = chain.program.clone();
            let db1 = workload::random_labeled_digraph(&mut p1, &edb_refs, "c", n, m, 13);
            let mut p2 = program.clone();
            let db2 = workload::random_labeled_digraph(&mut p2, &edb_refs, "c", n, m, 13);
            let (a1, s1) = run(&p1, &db1, Strategy::SemiNaive);
            let (a2, s2) = run(&p2, &db2, Strategy::SemiNaive);
            assert_eq!(a1, a2, "rewrite equivalence in E2 ({name}, n={n})");
            row(&format!("{name}/binary"), n, a1, &s1);
            row(&format!("{name}/monadic"), n, a2, &s2);
            group.bench_with_input(BenchmarkId::new(format!("{name}_binary"), n), &n, |b, _| {
                b.iter(|| run(&p1, &db1, Strategy::SemiNaive))
            });
            group.bench_with_input(
                BenchmarkId::new(format!("{name}_monadic"), n),
                &n,
                |b, _| b.iter(|| run(&p2, &db2, Strategy::SemiNaive)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
