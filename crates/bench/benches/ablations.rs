//! Ablation benches for the design choices called out in DESIGN.md §4:
//!
//! - **semi-naive vs naive** evaluation (the engine's delta machinery);
//! - **Hopcroft minimization on/off** in the rewrite pipeline (monadic
//!   rewrite size = one IDB per DFA state);
//! - **envelope tightness**: Mohri–Nederhof envelope vs exact DFA when
//!   both are available (strongly regular grammars).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use selprop_bench::{row, run};
use selprop_core::chain::ChainProgram;
use selprop_core::rewrite::monadic_rewrite;
use selprop_core::workload;
use selprop_datalog::eval::Strategy;
use selprop_grammar::regular::approximate;
use selprop_automata::minimize::minimize;

fn bench(c: &mut Criterion) {
    println!("\n== Ablations ==");
    let chain = ChainProgram::parse(
        "?- anc(c, Y).\nanc(X, Y) :- par(X, Y).\nanc(X, Y) :- anc(X, Z), par(Z, Y).",
    )
    .unwrap();

    // 1. semi-naive vs naive
    let mut group = c.benchmark_group("ablation_eval_strategy");
    group.sample_size(10);
    for n in [100usize, 400] {
        let mut p = chain.program.clone();
        let db = workload::chain(&mut p, "par", "c", n);
        let (_, s_naive) = run(&p, &db, Strategy::Naive);
        let (_, s_semi) = run(&p, &db, Strategy::SemiNaive);
        row("naive", n, 0, &s_naive);
        row("semi-naive", n, 0, &s_semi);
        assert!(s_semi.rule_firings < s_naive.rule_firings);
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
            b.iter(|| run(&p, &db, Strategy::Naive))
        });
        group.bench_with_input(BenchmarkId::new("seminaive", n), &n, |b, _| {
            b.iter(|| run(&p, &db, Strategy::SemiNaive))
        });
    }
    group.finish();

    // 2. minimization on/off: rewrite size
    let approx = approximate(&chain.grammar());
    let raw = approx.dfa();
    let min = minimize(&raw);
    let rewrite_raw = monadic_rewrite(&chain, &raw).unwrap();
    let rewrite_min = monadic_rewrite(&chain, &min).unwrap();
    println!(
        "rewrite size: raw DFA {} states → {} rules; minimized {} states → {} rules",
        raw.num_states(),
        rewrite_raw.rules.len(),
        min.num_states(),
        rewrite_min.rules.len()
    );
    assert!(rewrite_min.rules.len() <= rewrite_raw.rules.len());
    let mut group = c.benchmark_group("ablation_minimize");
    group.sample_size(10);
    for n in [200usize, 800] {
        let mut p1 = rewrite_raw.clone();
        let db1 = workload::chain(&mut p1, "par", "c", n);
        let mut p2 = rewrite_min.clone();
        let db2 = workload::chain(&mut p2, "par", "c", n);
        let (a1, _) = run(&p1, &db1, Strategy::SemiNaive);
        let (a2, _) = run(&p2, &db2, Strategy::SemiNaive);
        assert_eq!(a1, a2);
        group.bench_with_input(BenchmarkId::new("raw_dfa_rewrite", n), &n, |b, _| {
            b.iter(|| run(&p1, &db1, Strategy::SemiNaive))
        });
        group.bench_with_input(BenchmarkId::new("min_dfa_rewrite", n), &n, |b, _| {
            b.iter(|| run(&p2, &db2, Strategy::SemiNaive))
        });
    }
    group.finish();

    // 3. envelope tightness on strongly regular vs mixed grammars
    println!("envelope tightness:");
    for (name, src) in [
        ("strongly_regular", "anc -> par | anc par"),
        ("mixed_regular", "anc -> par | anc anc"),
        ("balanced", "p -> b1 b2 | b1 p b2"),
    ] {
        let g = selprop_grammar::Cfg::parse(src).unwrap();
        let a = approximate(&g);
        let dfa = minimize(&a.dfa());
        let lang_words = selprop_grammar::analysis::words_up_to(&g, 8).len();
        let env_words = dfa.words_up_to(8).len();
        println!(
            "  {name:<18} exact={} |L∩Σ≤8|={lang_words} |R(H)∩Σ≤8|={env_words}",
            a.exact
        );
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
