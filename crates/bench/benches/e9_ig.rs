//! E9 — Proposition 3.1 on `IG` truncations.
//!
//! Expected shape: `H(IG_n) = L(H) ∩ Σ^{≤n}` exactly at every depth; the
//! evaluation cost grows with the truncation size `O(|Σ|^n)`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use selprop_core::chain::ChainProgram;
use selprop_core::inf_model::{check_proposition_3_1, h_of_ig, ig_truncation};

const FAMILIES: [(&str, &str); 3] = [
    (
        "par_plus",
        "?- anc(c, Y).\nanc(X, Y) :- par(X, Y).\nanc(X, Y) :- anc(X, Z), par(Z, Y).",
    ),
    (
        "balanced",
        "?- p(c, Y).\np(X, Y) :- b1(X, X1), b2(X1, Y).\np(X, Y) :- b1(X, X1), p(X1, X2), b2(X2, Y).",
    ),
    (
        "nonlinear",
        "?- anc(c, Y).\nanc(X, Y) :- par(X, Y).\nanc(X, Y) :- anc(X, Z), anc(Z, Y).",
    ),
];

fn bench(c: &mut Criterion) {
    println!("\n== E9: Proposition 3.1 on IG truncations ==");
    for (name, src) in FAMILIES {
        let chain = ChainProgram::parse(src).unwrap();
        let depth = 8;
        let (ig, grammar, ok) = check_proposition_3_1(&chain, depth);
        let (_, trunc) = ig_truncation(&chain, depth);
        println!(
            "{name:<12} depth={depth} nodes={:<6} H(IG)={:<4} L∩Σ≤n={:<4} equal={ok}",
            trunc.nodes.len(),
            ig.len(),
            grammar.len()
        );
        assert!(ok, "Prop 3.1 must hold for {name}");
    }

    let mut group = c.benchmark_group("e9_ig");
    group.sample_size(10);
    for (name, src) in FAMILIES {
        let chain = ChainProgram::parse(src).unwrap();
        let depths: &[usize] = if chain.edbs().len() == 1 {
            &[6, 9, 12]
        } else {
            &[4, 6, 8]
        };
        for &depth in depths {
            group.bench_with_input(
                BenchmarkId::new(name, depth),
                &depth,
                |b, &d| b.iter(|| h_of_ig(&chain, d)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
