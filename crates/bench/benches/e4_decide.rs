//! E4 — Corollary 3.4: the decision pipeline on the program gallery.
//!
//! Expected shape: the decidable certificates (finiteness, strong
//! regularity, self-embedding) cost microseconds; the undecidable
//! region's evidence gathering costs what its sampling budget says; and
//! the trichotomy lands exactly where ground truth puts it.

use criterion::{criterion_group, criterion_main, Criterion};
use selprop_core::chain::ChainProgram;
use selprop_core::propagate::{propagate, propagate_with, Propagation, PropagationBudget};

const GALLERY: [(&str, &str, &str); 6] = [
    ("left_linear", "propagated",
     "?- anc(c, Y).\nanc(X, Y) :- par(X, Y).\nanc(X, Y) :- anc(X, Z), par(Z, Y)."),
    ("right_linear", "propagated",
     "?- anc(c, Y).\nanc(X, Y) :- par(X, Y).\nanc(X, Y) :- par(X, Z), anc(Z, Y)."),
    ("finite", "propagated",
     "?- p(c, Y).\np(X, Y) :- b1(X, Y).\np(X, Y) :- b1(X, Z), b2(Z, Y)."),
    ("nonlinear_regular", "propagated",
     "?- anc(c, Y).\nanc(X, Y) :- par(X, Y).\nanc(X, Y) :- anc(X, Z), anc(Z, Y)."),
    ("balanced", "unknown",
     "?- p(c, Y).\np(X, Y) :- b1(X, X1), b2(X1, Y).\np(X, Y) :- b1(X, X1), p(X1, X2), b2(X2, Y)."),
    ("diagonal_infinite", "impossible",
     "?- p(X, X).\np(X, Y) :- b(X, Y).\np(X, Y) :- p(X, Z), b(Z, Y)."),
];

fn outcome_label(p: &Propagation) -> &'static str {
    match p {
        Propagation::Propagated { .. } => "propagated",
        Propagation::Impossible { .. } => "impossible",
        Propagation::Unknown(_) => "unknown",
    }
}

fn bench(c: &mut Criterion) {
    println!("\n== E4: decision trichotomy ==");
    for (name, expected, src) in GALLERY {
        let chain = ChainProgram::parse(src).unwrap();
        let outcome = propagate(&chain).unwrap();
        println!("{name:<20} expected={expected:<11} got={}", outcome_label(&outcome));
        assert_eq!(outcome_label(&outcome), expected, "trichotomy mismatch for {name}");
    }

    let mut group = c.benchmark_group("e4_decide");
    group.sample_size(10);
    for (name, _, src) in GALLERY {
        let chain = ChainProgram::parse(src).unwrap();
        group.bench_function(name, |b| b.iter(|| propagate(&chain).unwrap()));
    }
    // budget sweep for the undecidable region
    let balanced = ChainProgram::parse(GALLERY[4].2).unwrap();
    for nerode in [4usize, 6] {
        group.bench_function(format!("balanced_budget_{nerode}"), |b| {
            b.iter(|| {
                propagate_with(
                    &balanced,
                    PropagationBudget {
                        nerode_max_len: nerode,
                        envelope_sample_len: 8,
                    },
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
