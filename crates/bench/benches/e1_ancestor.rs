//! E1 — Example 1.1: the four ancestor programs A–D plus magic(A..C) on
//! random parent forests with disconnected noise.
//!
//! Expected shape (paper, Section 1): D (monadic) ≪ A, B, C;
//! magic(A)/magic(B) land near D; magic(C) stays expensive.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use selprop_bench::{row, run, strategy_from_env, THREAD_SWEEP};
use selprop_core::workload;
use selprop_datalog::db::Database;
use selprop_datalog::eval::Strategy;
use selprop_datalog::magic::magic_transform;
use selprop_datalog::parser::parse_program;
use selprop_datalog::Program;

const PROGRAMS: [(&str, &str); 4] = [
    ("A", "?- anc(john, Y).\nanc(X, Y) :- par(X, Y).\nanc(X, Y) :- anc(X, Z), par(Z, Y)."),
    ("B", "?- anc(john, Y).\nanc(X, Y) :- par(X, Y).\nanc(X, Y) :- par(X, Z), anc(Z, Y)."),
    ("C", "?- anc(john, Y).\nanc(X, Y) :- par(X, Y).\nanc(X, Y) :- anc(X, Z), anc(Z, Y)."),
    ("D", "?- ancjohn(Y).\nancjohn(Y) :- par(john, Y).\nancjohn(Y) :- ancjohn(Z), par(Z, Y)."),
];

fn build_db(program: &mut Program, n: usize) -> Database {
    let mut db = workload::random_forest(program, "par", "john", n, 11);
    let noise = workload::wide(program, "par", "elsewhere", 0, n / 20, 10);
    for (p, rel) in noise.iter() {
        for t in rel.iter() {
            db.insert(p, t.clone());
        }
    }
    db
}

fn bench(c: &mut Criterion) {
    println!("\n== E1: Example 1.1 work table ==");
    for n in [100usize, 400] {
        for (name, src) in PROGRAMS {
            let mut p = parse_program(src).unwrap();
            let db = build_db(&mut p, n);
            let (answers, stats) = run(&p, &db, Strategy::SemiNaive);
            row(name, n, answers, &stats);
            if name != "D" {
                let magic = magic_transform(&p).unwrap();
                let (ma, ms) = run(&magic.program, &db, Strategy::SemiNaive);
                row(&format!("magic({name})"), n, ma, &ms);
            }
        }
    }

    // Large-scale wall-clock configuration (>10^6 derived anc tuples);
    // opt-in via SELPROP_LARGE=1 so the default bench run stays quick.
    // `record` (crates/bench/src/bin/record.rs) measures the same config
    // against the reference engine and persists it in BENCH_eval.json.
    if std::env::var_os("SELPROP_LARGE").is_some() {
        let mut group = c.benchmark_group("e1_ancestor_large");
        group.sample_size(2);
        for (name, src) in [PROGRAMS[0], PROGRAMS[3]] {
            let mut p = parse_program(src).unwrap();
            let db = workload::layered_dag(&mut p, "par", "john", 72, 20);
            let (answers, stats) = run(&p, &db, Strategy::SemiNaive);
            row(&format!("{name}/layered_dag"), db.num_facts(), answers, &stats);
            group.bench_with_input(BenchmarkId::new(name, "layered_dag_72x20"), &name, |b, _| {
                b.iter(|| run(&p, &db, Strategy::SemiNaive))
            });
            // Thread-scaling sweep of the sharded parallel engine on the
            // same closure (EXPERIMENTS.md's thread table; BENCH_eval.json
            // records the same sweep via `record`).
            if name == "A" {
                for threads in THREAD_SWEEP {
                    let strategy = Strategy::SemiNaiveParallel { threads };
                    let (pa, ps) = run(&p, &db, strategy);
                    assert_eq!((pa, ps), (answers, stats), "parallel drift at {threads}t");
                    group.bench_with_input(
                        BenchmarkId::new(format!("{name}_threads"), threads),
                        &threads,
                        |b, _| b.iter(|| run(&p, &db, strategy)),
                    );
                }
            }
        }
        group.finish();
    }

    // The timed sweep honors SELPROP_THREADS (CI smoke-runs the parallel
    // engine with SELPROP_THREADS=4); counters are strategy-invariant,
    // which the assert checks on every config.
    let strategy = strategy_from_env();
    let mut group = c.benchmark_group("e1_ancestor");
    group.sample_size(10);
    for n in [100usize, 400] {
        for (name, src) in PROGRAMS {
            let mut p = parse_program(src).unwrap();
            let db = build_db(&mut p, n);
            if strategy != Strategy::SemiNaive {
                assert_eq!(
                    run(&p, &db, strategy),
                    run(&p, &db, Strategy::SemiNaive),
                    "{name}/n={n}: parallel strategy drift"
                );
            }
            group.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
                b.iter(|| run(&p, &db, strategy))
            });
            if name != "D" {
                let magic = magic_transform(&p).unwrap();
                if strategy != Strategy::SemiNaive {
                    assert_eq!(
                        run(&magic.program, &db, strategy),
                        run(&magic.program, &db, Strategy::SemiNaive),
                        "magic({name})/n={n}: parallel strategy drift"
                    );
                }
                group.bench_with_input(BenchmarkId::new(format!("magic_{name}"), n), &n, |b, _| {
                    b.iter(|| run(&magic.program, &db, strategy))
                });
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
