//! E6 — Proposition 8.2: bounded vs unbounded chain programs.
//!
//! Expected shape: iterations-to-fixpoint constant in database size iff
//! the program is bounded (iff `L(H)` finite); the FO rewrite of a
//! bounded program evaluates in a data-size-independent number of rounds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use selprop_bench::{row, run};
use selprop_core::bounded::{boundedness, Boundedness};
use selprop_core::chain::ChainProgram;
use selprop_core::workload;
use selprop_datalog::derivation::Provenance;
use selprop_datalog::eval::Strategy;

const BOUNDED: &str = "?- p(c, Y).\n\
                       p(X, Y) :- b(X, Y).\n\
                       p(X, Y) :- b(X, Z1), b(Z1, Z2), b(Z2, Y).";
const UNBOUNDED: &str = "?- anc(c, Y).\n\
                         anc(X, Y) :- par(X, Y).\n\
                         anc(X, Y) :- anc(X, Z), par(Z, Y).";

fn bench(c: &mut Criterion) {
    println!("\n== E6: boundedness (Prop 8.2) ==");
    let bounded = ChainProgram::parse(BOUNDED).unwrap();
    let unbounded = ChainProgram::parse(UNBOUNDED).unwrap();
    let Boundedness::Bounded { fo_program, depth_bound, .. } = boundedness(&bounded) else {
        panic!("must be bounded");
    };
    println!("bounded program: depth bound {depth_bound}; FO form has {} rules", fo_program.rules.len());
    assert!(!boundedness(&unbounded).is_bounded());

    let mut group = c.benchmark_group("e6_bounded");
    group.sample_size(10);
    for n in [50usize, 200, 800] {
        let mut p1 = bounded.program.clone();
        let db1 = workload::chain(&mut p1, "b", "c", n);
        let (a1, s1) = run(&p1, &db1, Strategy::SemiNaive);
        row("bounded/original", n, a1, &s1);
        assert!(s1.iterations <= 3, "bounded: iterations independent of n");

        let mut p2 = fo_program.clone();
        let db2 = workload::chain(&mut p2, "b", "c", n);
        let (a2, s2) = run(&p2, &db2, Strategy::SemiNaive);
        row("bounded/fo_form", n, a2, &s2);
        assert_eq!(a1, a2, "FO form equivalent");

        let mut p3 = unbounded.program.clone();
        let db3 = workload::chain(&mut p3, "par", "c", n);
        let (a3, s3) = run(&p3, &db3, Strategy::SemiNaive);
        row("unbounded/anc", n, a3, &s3);
        assert!(s3.iterations >= n / 2, "unbounded: iterations grow with n");

        // The definitional Section-8 measure, from recorded provenance:
        // max derivation-tree height is n-independent iff bounded.
        let h_bounded = Provenance::compute(&p1, &db1).max_height();
        let h_unbounded = Provenance::compute(&p3, &db3).max_height();
        println!(
            "max-tree-height          n={n:<8} bounded={h_bounded:<8} unbounded={h_unbounded}"
        );
        assert!(h_bounded <= 4, "bounded program: constant tree height");
        assert!(
            h_unbounded as usize >= n,
            "unbounded program: tree height tracks the chain"
        );

        group.bench_with_input(BenchmarkId::new("bounded", n), &n, |b, _| {
            b.iter(|| run(&p1, &db1, Strategy::SemiNaive))
        });
        group.bench_with_input(BenchmarkId::new("unbounded", n), &n, |b, _| {
            b.iter(|| run(&p3, &db3, Strategy::SemiNaive))
        });
    }
    group.bench_function("decide_boundedness", |b| {
        b.iter(|| (boundedness(&bounded).is_bounded(), boundedness(&unbounded).is_bounded()))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
