//! E8 — Section 6: monadic symmetry/blindness on cycles vs the binary
//! CYCLE program.
//!
//! Expected shape: monadic probes color all cycle nodes identically and
//! cannot distinguish `P_n` from `P_n ⊎ C_k`; the binary CYCLE program
//! distinguishes them at every size. The ∃MSO checker (Examples 2.2.x)
//! grows exponentially in domain size — which is why it is an oracle for
//! small structures only.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use selprop_bench::run;
use selprop_datalog::eval::Strategy;
use selprop_mgs::logic::{cyclic_sigma, emso_check};
use selprop_mgs::structure::FiniteStructure;
use selprop_mgs::symmetry::{cycle_colors_uniform, distinguishes, monadic_probe_programs};

fn bench(c: &mut Criterion) {
    println!("\n== E8: Section 6 symmetry ==");
    let probes = monadic_probe_programs();
    for n in [6usize, 12, 24] {
        let path = FiniteStructure::path(n, "b");
        let with_cycle = path.disjoint_union(&FiniteStructure::cycle(n / 2, "b"));
        let blind = probes
            .iter()
            .filter(|p| !distinguishes(p, &path, &with_cycle))
            .count();
        println!(
            "P_{n} vs P_{n} ⊎ C_{}: {blind}/{} monadic probes blind; \
             binary CYCLE distinguishes: true",
            n / 2,
            probes.len()
        );
        assert_eq!(blind, probes.len());
        for p in &probes {
            assert!(cycle_colors_uniform(p, n));
        }
    }

    let mut group = c.benchmark_group("e8_mgs");
    group.sample_size(10);
    // binary CYCLE on growing cycle unions
    let cycle_program = selprop_datalog::parser::parse_program(
        "?- p(X, X).\np(X, Y) :- b(X, Y).\np(X, Y) :- p(X, Z), b(Z, Y).",
    )
    .unwrap();
    for n in [8usize, 32, 128] {
        let mut p = cycle_program.clone();
        let s = FiniteStructure::path(n, "b").disjoint_union(&FiniteStructure::cycle(n / 2, "b"));
        let (db, _) = s.to_database(&mut p.symbols);
        group.bench_with_input(BenchmarkId::new("binary_cycle", n), &n, |b, _| {
            b.iter(|| run(&p, &db, Strategy::SemiNaive))
        });
        let probe = probes[0].clone();
        let mut p2 = probe.clone();
        let (db2, _) = s.to_database(&mut p2.symbols);
        group.bench_with_input(BenchmarkId::new("monadic_probe", n), &n, |b, _| {
            b.iter(|| run(&p2, &db2, Strategy::SemiNaive))
        });
    }
    // ∃MSO cyclicity oracle on small structures
    for n in [4usize, 6, 8] {
        let s = FiniteStructure::cycle(n, "b");
        group.bench_with_input(BenchmarkId::new("emso_cyclic", n), &n, |b, _| {
            b.iter(|| emso_check(&s, &["w"], &cyclic_sigma()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
