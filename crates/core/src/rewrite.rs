//! Monadic rewrites — the constructive ("if") direction of Theorem 3.3.
//!
//! Given a DFA for a *regular* `L(H)` and a goal with a constant, the
//! rewrite introduces one monadic IDB per live DFA state: `n_q(v)` holds
//! iff some path from the bound constant to `v` drives the automaton from
//! its start to `q`. This is Example 1.1's Program A → Program D
//! transformation generalized from the left-linear grammar to an
//! arbitrary DFA (the paper routes it through a left-linear grammar
//! `H_left`; a DFA *is* a left-linear grammar by
//! [`selprop_automata::linear::LinearGrammar::from_dfa_left`], so the
//! composition is the same construction).
//!
//! For the diagonal goal `p(X, X)` with *finite* `L(H)`, the rewrite is a
//! union of tagged tableaux (one nonrecursive rule per word, Section 3's
//! "if (part 2)").

use selprop_automata::dfa::Dfa;
use selprop_automata::Symbol;
use selprop_datalog::ast::{Atom, Program, Rule, Term};

use crate::chain::{ChainProgram, GoalForm};

/// Builds the monadic program for a constant-goal chain program from a
/// DFA with `L(dfa) = L(H)`.
///
/// Goal handling:
/// - `p(c, Y)`: forward marking from `c`; answers `ans(Y)`.
/// - `p(X, c)`: the same construction on the *reversed* automaton,
///   marking backwards from `c`; answers `ans(X)`.
/// - `p(c, c1)` / `p(c, c)`: forward marking from `c`, 0-ary answer
///   `ans :- n_f(c1)`.
pub fn monadic_rewrite(chain: &ChainProgram, dfa: &Dfa) -> Result<Program, String> {
    let edbs = chain.edbs();
    let alphabet = &dfa.alphabet;
    // map alphabet symbols back to EDB predicates by name
    let pred_of_symbol = |s: Symbol| -> selprop_datalog::ast::Pred {
        let name = alphabet.name(s);
        *edbs
            .iter()
            .find(|&&p| chain.program.symbols.pred_name(p) == name)
            .expect("alphabet symbol names an EDB")
    };

    match &chain.goal_form {
        GoalForm::BoundFirst(c) => {
            Ok(forward_marking(chain, dfa, c, &pred_of_symbol, Answer::Var))
        }
        GoalForm::BoundSecond(c) => {
            // reverse the automaton and the edge direction
            let rev = Dfa::from_nfa(&dfa.to_nfa().reversed());
            Ok(forward_marking_impl(
                chain,
                &rev,
                c,
                &pred_of_symbol,
                Answer::Var,
                true,
            ))
        }
        GoalForm::BoundBoth(c, c1) => Ok(forward_marking(
            chain,
            dfa,
            c,
            &pred_of_symbol,
            Answer::At(c1.clone()),
        )),
        GoalForm::Free => Err("goal p(X, Y) carries no selection to propagate".to_owned()),
        GoalForm::Diagonal => Err(
            "diagonal goals rewrite via finite tableaux, not a DFA — use tableaux_rewrite"
                .to_owned(),
        ),
    }
}

enum Answer {
    /// `ans(Y) :- n_f(Y)` for accepting `f`.
    Var,
    /// `ans :- n_f(c1)` (0-ary answer).
    At(String),
}

fn forward_marking(
    chain: &ChainProgram,
    dfa: &Dfa,
    origin: &str,
    pred_of_symbol: &dyn Fn(Symbol) -> selprop_datalog::ast::Pred,
    answer: Answer,
) -> Program {
    forward_marking_impl(chain, dfa, origin, pred_of_symbol, answer, false)
}

fn forward_marking_impl(
    chain: &ChainProgram,
    dfa: &Dfa,
    origin: &str,
    pred_of_symbol: &dyn Fn(Symbol) -> selprop_datalog::ast::Pred,
    answer: Answer,
    reversed_edges: bool,
) -> Program {
    let mut symbols = chain.program.symbols.clone();
    let live = dfa.live_states();
    let n_pred: Vec<Option<selprop_datalog::ast::Pred>> = (0..dfa.num_states())
        .map(|q| {
            live.contains(&q)
                .then(|| symbols.fresh_predicate(&format!("n{q}")))
        })
        .collect();
    let ans = symbols.fresh_predicate("ans");
    let c = symbols.constant(origin);
    let y = symbols.fresh_variable("Y");
    let z = symbols.fresh_variable("Z");

    let mut rules = Vec::new();
    // seed: n_{q0}(c)
    if let Some(p0) = n_pred[dfa.start()] {
        rules.push(Rule::new(Atom::new(p0, vec![Term::Const(c)]), Vec::new()));
    }
    // step: n_{q'}(Y) :- n_q(Z), b(Z, Y)   (or b(Y, Z) when reversed)
    for q in live.iter().copied() {
        for s in dfa.alphabet.symbols() {
            let q2 = dfa.step(q, s);
            let (Some(pq), Some(pq2)) = (n_pred[q], n_pred[q2]) else {
                continue;
            };
            let edge_pred = pred_of_symbol(s);
            let edge = if reversed_edges {
                Atom::new(edge_pred, vec![Term::Var(y), Term::Var(z)])
            } else {
                Atom::new(edge_pred, vec![Term::Var(z), Term::Var(y)])
            };
            rules.push(Rule::new(
                Atom::new(pq2, vec![Term::Var(y)]),
                vec![Atom::new(pq, vec![Term::Var(z)]), edge],
            ));
        }
    }
    // answers
    let goal = match answer {
        Answer::Var => {
            for q in live.iter().copied() {
                if dfa.is_accept(q) {
                    if let Some(pq) = n_pred[q] {
                        rules.push(Rule::new(
                            Atom::new(ans, vec![Term::Var(y)]),
                            vec![Atom::new(pq, vec![Term::Var(y)])],
                        ));
                    }
                }
            }
            Atom::new(ans, vec![Term::Var(y)])
        }
        Answer::At(c1) => {
            let c1 = symbols.constant(&c1);
            for q in live.iter().copied() {
                if dfa.is_accept(q) {
                    if let Some(pq) = n_pred[q] {
                        rules.push(Rule::new(
                            Atom::new(ans, Vec::new()),
                            vec![Atom::new(pq, vec![Term::Const(c1)])],
                        ));
                    }
                }
            }
            Atom::new(ans, Vec::new())
        }
    };
    // Degenerate case: empty language — keep the program valid by giving
    // `ans` an unsatisfiable rule over a fresh EDB-free guard. Simplest:
    // a rule requiring membership in an (always empty) IDB `never`.
    if !rules.iter().any(|r| r.head.pred == ans) {
        let never = symbols.fresh_predicate("never");
        let x = symbols.fresh_variable("X0");
        // never(X) :- never(X)  — safe, derives nothing
        rules.push(Rule::new(
            Atom::new(never, vec![Term::Var(x)]),
            vec![Atom::new(never, vec![Term::Var(x)])],
        ));
        match goal.arity() {
            0 => rules.push(Rule::new(
                Atom::new(ans, Vec::new()),
                vec![Atom::new(never, vec![Term::Var(x)])],
            )),
            _ => rules.push(Rule::new(
                Atom::new(ans, vec![Term::Var(x)]),
                vec![Atom::new(never, vec![Term::Var(x)])],
            )),
        }
    }
    Program {
        rules,
        goal,
        symbols,
    }
}

/// The diagonal rewrite (Theorem 3.3(2), "if"): for finite
/// `L(H) = {w1, ..., wk}`, one nonrecursive monadic rule per word:
/// `ans(X) :- b_{w_i[0]}(X, Z1), ..., b_{w_i[last]}(Z_{n-1}, X)`.
pub fn tableaux_rewrite(
    chain: &ChainProgram,
    words: &[Vec<Symbol>],
) -> Result<Program, String> {
    if chain.goal_form != GoalForm::Diagonal {
        return Err("tableaux rewrite applies to the p(X, X) goal".to_owned());
    }
    let grammar = chain.grammar();
    let edbs = chain.edbs();
    let pred_of_symbol = |s: Symbol| -> selprop_datalog::ast::Pred {
        let name = grammar.alphabet.name(s);
        *edbs
            .iter()
            .find(|&&p| chain.program.symbols.pred_name(p) == name)
            .expect("alphabet symbol names an EDB")
    };
    let mut symbols = chain.program.symbols.clone();
    let ans = symbols.fresh_predicate("ans");
    let x = symbols.fresh_variable("X");
    let mut rules = Vec::new();
    for w in words {
        assert!(!w.is_empty(), "chain languages are ε-free");
        let mut body = Vec::new();
        let mut prev = Term::Var(x);
        for (i, &s) in w.iter().enumerate() {
            let next = if i == w.len() - 1 {
                Term::Var(x)
            } else {
                Term::Var(symbols.fresh_variable(&format!("Z{i}")))
            };
            body.push(Atom::new(pred_of_symbol(s), vec![prev, next]));
            prev = next;
        }
        rules.push(Rule::new(Atom::new(ans, vec![Term::Var(x)]), body));
    }
    if rules.is_empty() {
        let never = symbols.fresh_predicate("never");
        rules.push(Rule::new(
            Atom::new(never, vec![Term::Var(x)]),
            vec![Atom::new(never, vec![Term::Var(x)])],
        ));
        rules.push(Rule::new(
            Atom::new(ans, vec![Term::Var(x)]),
            vec![Atom::new(never, vec![Term::Var(x)])],
        ));
    }
    Ok(Program {
        rules,
        goal: Atom::new(ans, vec![Term::Var(x)]),
        symbols,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use selprop_datalog::db::Database;
    use selprop_datalog::eval::{answer, Strategy};
    use selprop_grammar::regular::approximate;

    fn eval_both(
        chain: &ChainProgram,
        rewrite: &Program,
        db_edges: &[(&str, &str, &str)],
    ) -> (Vec<Vec<selprop_datalog::Const>>, Vec<Vec<selprop_datalog::Const>>) {
        let mut p1 = chain.program.clone();
        let mut db1 = Database::new();
        for &(b, u, v) in db_edges {
            let pred = p1.symbols.predicate(b);
            let cu = p1.symbols.constant(u);
            let cv = p1.symbols.constant(v);
            db1.insert(pred, vec![cu, cv]);
        }
        let (a1, _) = answer(&p1, &db1, Strategy::SemiNaive);

        let mut p2 = rewrite.clone();
        let mut db2 = Database::new();
        for &(b, u, v) in db_edges {
            let pred = p2.symbols.predicate(b);
            let cu = p2.symbols.constant(u);
            let cv = p2.symbols.constant(v);
            db2.insert(pred, vec![cu, cv]);
        }
        let (a2, _) = answer(&p2, &db2, Strategy::SemiNaive);
        // compare by rendered constant names (symbol spaces differ)
        let names = |p: &Program, rel: &selprop_datalog::Relation| -> Vec<Vec<String>> {
            let mut v: Vec<Vec<String>> = rel
                .iter()
                .map(|t| t.iter().map(|&c| p.symbols.const_name(c).to_owned()).collect())
                .collect();
            v.sort();
            v
        };
        let n1 = names(&p1, &a1);
        let n2 = names(&p2, &a2);
        assert_eq!(n1, n2, "rewrite must be finite-query equivalent");
        (a1.sorted(), a2.sorted())
    }

    #[test]
    fn ancestor_rewrite_matches_program_d() {
        let chain = ChainProgram::parse(
            "?- anc(john, Y).\n\
             anc(X, Y) :- par(X, Y).\n\
             anc(X, Y) :- anc(X, Z), par(Z, Y).",
        )
        .unwrap();
        let approx = approximate(&chain.grammar());
        assert!(approx.exact);
        let dfa = selprop_automata::minimize::minimize(&approx.dfa());
        let rewrite = monadic_rewrite(&chain, &dfa).unwrap();
        assert!(rewrite.is_monadic());
        eval_both(
            &chain,
            &rewrite,
            &[
                ("par", "john", "a"),
                ("par", "a", "b"),
                ("par", "b", "c"),
                ("par", "x", "y"), // irrelevant island
                ("par", "y", "john"), // incoming edge to john
            ],
        );
    }

    #[test]
    fn bound_second_rewrite() {
        let chain = ChainProgram::parse(
            "?- anc(X, mary).\n\
             anc(X, Y) :- par(X, Y).\n\
             anc(X, Y) :- anc(X, Z), par(Z, Y).",
        )
        .unwrap();
        let approx = approximate(&chain.grammar());
        let dfa = approx.dfa();
        let rewrite = monadic_rewrite(&chain, &dfa).unwrap();
        assert!(rewrite.is_monadic());
        eval_both(
            &chain,
            &rewrite,
            &[
                ("par", "a", "b"),
                ("par", "b", "mary"),
                ("par", "mary", "c"),
                ("par", "z", "w"),
            ],
        );
    }

    #[test]
    fn bound_both_rewrite_boolean() {
        let chain = ChainProgram::parse(
            "?- p(s, t).\n\
             p(X, Y) :- b1(X, X1), b2(X1, Y).\n\
             p(X, Y) :- p(X, Z), b2(Z, Y).",
        )
        .unwrap();
        let approx = approximate(&chain.grammar());
        assert!(approx.exact); // left-linear-ish: p -> b1 b2 | p b2
        let rewrite = monadic_rewrite(&chain, &approx.dfa()).unwrap();
        assert!(rewrite.is_monadic());
        eval_both(
            &chain,
            &rewrite,
            &[("b1", "s", "m"), ("b2", "m", "t"), ("b2", "t", "u")],
        );
        // negative instance
        eval_both(&chain, &rewrite, &[("b1", "s", "m"), ("b1", "m", "t")]);
    }

    #[test]
    fn two_edb_rewrite() {
        // L = b1 b2* (left-linear via p -> b1 | p b2)
        let chain = ChainProgram::parse(
            "?- p(c, Y).\n\
             p(X, Y) :- b1(X, Y).\n\
             p(X, Y) :- p(X, Z), b2(Z, Y).",
        )
        .unwrap();
        let approx = approximate(&chain.grammar());
        assert!(approx.exact);
        let rewrite = monadic_rewrite(&chain, &approx.dfa()).unwrap();
        assert!(rewrite.is_monadic());
        eval_both(
            &chain,
            &rewrite,
            &[
                ("b1", "c", "a"),
                ("b2", "a", "b"),
                ("b2", "b", "d"),
                ("b1", "d", "e"), // b1 later: e not an answer via b1 b2*? it is not reachable as b1 b2*
                ("b2", "c", "z"), // b2 first: z not an answer
            ],
        );
    }

    #[test]
    fn tableaux_rewrite_for_finite_language() {
        // L = {b, b b} — via two nonrecursive chain rules.
        let chain = ChainProgram::parse(
            "?- p(X, X).\n\
             p(X, Y) :- b(X, Y).\n\
             p(X, Y) :- b(X, Z), b(Z, Y).",
        )
        .unwrap();
        let words = chain.language_words(4);
        assert_eq!(words.len(), 2);
        let rewrite = tableaux_rewrite(&chain, &words).unwrap();
        assert!(rewrite.is_monadic());
        // self-loop at a: p(a, a) via b and via b b
        eval_both(
            &chain,
            &rewrite,
            &[("b", "a", "a"), ("b", "u", "v"), ("b", "v", "u")],
        );
    }

    #[test]
    fn rewrite_size_tracks_dfa_size() {
        let chain = ChainProgram::parse(
            "?- anc(john, Y).\n\
             anc(X, Y) :- par(X, Y).\n\
             anc(X, Y) :- anc(X, Z), par(Z, Y).",
        )
        .unwrap();
        let approx = approximate(&chain.grammar());
        let min = selprop_automata::minimize::minimize(&approx.dfa());
        let rewrite = monadic_rewrite(&chain, &min).unwrap();
        // par+: 2 live states → seed + 2·1 step rules + 1 answer rule-ish
        assert!(rewrite.rules.len() <= 6, "rewrite blew up: {}", rewrite.render());
    }
}
