//! Boundedness and first-order expressibility (Proposition 8.2).
//!
//! For a chain program `H` the following are equivalent:
//! (1) the query of `H` is first-order expressible over finite
//! structures, (2) `H` is bounded w.r.t. its goal (derivation-tree size
//! admits a database-independent bound), (3) `L(H)` is finite.
//!
//! Since finiteness of `L(H)` is decidable, so is boundedness for chain
//! programs — in contrast to general Datalog, where it is undecidable
//! (Gaifman–Mairson–Sagiv–Vardi, ref.\[17\]; discussed in Section 9). The
//! decision procedure returns, in the bounded case, the *witnessing FO
//! form*: a nonrecursive union-of-conjunctive-queries program, plus the
//! numeric depth bound; in the unbounded case, a pumping certificate.

use selprop_datalog::ast::{Atom, Program, Rule, Term};
use selprop_datalog::db::Database;
use selprop_datalog::derivation::{ConvergenceProfile, Provenance};
use selprop_grammar::analysis::{finiteness, Finiteness, PumpWitness};

use crate::chain::ChainProgram;

/// The boundedness decision.
#[derive(Clone, Debug)]
pub enum Boundedness {
    /// `L(H)` is finite: the program is bounded and FO-expressible.
    Bounded {
        /// A nonrecursive (hence first-order) program equivalent to `H`
        /// under the trivial goal `p(X, Y)` — one conjunctive rule per
        /// word of `L(H)`.
        fo_program: Program,
        /// Every output fact has a derivation of size ≤ this bound
        /// (nodes of the rewrite's derivation tree: one rule + its
        /// leaves).
        depth_bound: usize,
        /// The words of `L(H)`.
        words: Vec<Vec<selprop_automata::Symbol>>,
    },
    /// `L(H)` is infinite: unbounded, not FO-expressible.
    Unbounded {
        /// The pumping certificate.
        pump: PumpWitness,
    },
}

impl Boundedness {
    /// Whether the program was found bounded.
    pub fn is_bounded(&self) -> bool {
        matches!(self, Boundedness::Bounded { .. })
    }
}

/// Decides boundedness of a chain program (Prop. 8.2, effective by
/// reduction to CFL finiteness).
pub fn boundedness(chain: &ChainProgram) -> Boundedness {
    match finiteness(&chain.grammar()) {
        Finiteness::Finite(words) => {
            let fo_program = fo_form(chain, &words);
            let depth_bound = words.iter().map(Vec::len).max().unwrap_or(0) + 1;
            Boundedness::Bounded {
                fo_program,
                depth_bound,
                words,
            }
        }
        Finiteness::Infinite(pump) => Boundedness::Unbounded { pump },
    }
}

/// The FO (nonrecursive) form: `p_fo(X, Y) :- b_{w[0]}(X, Z1), ...` per
/// word `w ∈ L(H)`, with the original goal's selection re-applied.
fn fo_form(chain: &ChainProgram, words: &[Vec<selprop_automata::Symbol>]) -> Program {
    let grammar = chain.grammar();
    let edbs = chain.edbs();
    let pred_of_symbol = |s: selprop_automata::Symbol| {
        let name = grammar.alphabet.name(s);
        *edbs
            .iter()
            .find(|&&p| chain.program.symbols.pred_name(p) == name)
            .expect("alphabet symbol names an EDB")
    };
    let mut symbols = chain.program.symbols.clone();
    let p_fo = symbols.fresh_predicate("p_fo");
    let x = symbols.fresh_variable("X");
    let y = symbols.fresh_variable("Y");
    let mut rules = Vec::new();
    for w in words {
        let mut body = Vec::new();
        let mut prev = Term::Var(x);
        for (i, &s) in w.iter().enumerate() {
            let next = if i == w.len() - 1 {
                Term::Var(y)
            } else {
                Term::Var(symbols.fresh_variable(&format!("Z{i}")))
            };
            body.push(Atom::new(pred_of_symbol(s), vec![prev, next]));
            prev = next;
        }
        rules.push(Rule::new(Atom::new(p_fo, vec![Term::Var(x), Term::Var(y)]), body));
    }
    if rules.is_empty() {
        // empty language: p_fo(X, Y) :- p_fo(X, Y). derives nothing
        rules.push(Rule::new(
            Atom::new(p_fo, vec![Term::Var(x), Term::Var(y)]),
            vec![Atom::new(p_fo, vec![Term::Var(x), Term::Var(y)])],
        ));
    }
    // reapply the original goal's selection, with predicate renamed
    let goal = Atom::new(p_fo, chain.program.goal.args.clone());
    Program {
        rules,
        goal,
        symbols,
    }
}

/// Empirical side of Prop. 8.2: iterations-to-fixpoint of the semi-naive
/// evaluation on the given databases. For a bounded program the profile
/// length is constant; for an unbounded one it grows with the data.
pub fn convergence_iterations(chain: &ChainProgram, dbs: &[Database]) -> Vec<usize> {
    dbs.iter()
        .map(|db| ConvergenceProfile::measure(&chain.program, db).iterations())
        .collect()
}

/// The *direct* Section-8 measure, now computable at scale: the maximum
/// derivation-tree height over all facts derived from each database,
/// read off the columnar engine's recorded justifications
/// ([`selprop_datalog::eval::evaluate_with_provenance`]). Boundedness is
/// *defined* through bounded tree size; for a bounded program this is
/// constant in the data, for an unbounded one it grows. Unlike
/// [`convergence_iterations`] (a proxy via fixpoint stages), this
/// measures the trees themselves — iteratively, so chain databases deep
/// enough to overflow a recursive traversal are fine.
pub fn derivation_heights(chain: &ChainProgram, dbs: &[Database]) -> Vec<u64> {
    dbs.iter()
        .map(|db| Provenance::compute(&chain.program, db).max_height())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use selprop_datalog::eval::{answer, Strategy};

    fn chain_db(program: &mut Program, n: usize) -> Database {
        let edb = program.edb_predicates()[0];
        let mut db = Database::new();
        let mut prev = program.symbols.constant("v0");
        for i in 1..=n {
            let c = program.symbols.constant(&format!("v{i}"));
            db.insert(edb, vec![prev, c]);
            prev = c;
        }
        db
    }

    #[test]
    fn nonrecursive_chain_is_bounded() {
        let chain = ChainProgram::parse(
            "?- p(c, Y).\n\
             p(X, Y) :- b(X, Y).\n\
             p(X, Y) :- b(X, Z), b(Z, Y).",
        )
        .unwrap();
        match boundedness(&chain) {
            Boundedness::Bounded {
                fo_program,
                depth_bound,
                words,
            } => {
                assert_eq!(words.len(), 2);
                assert_eq!(depth_bound, 3);
                // FO form equivalent to the original under the goal
                let mut orig = chain.program.clone();
                let db = chain_db(&mut orig, 4);
                let (want, _) = answer(&orig, &db, Strategy::SemiNaive);
                let mut fo = fo_program.clone();
                let db2 = chain_db(&mut fo, 4);
                let (got, _) = answer(&fo, &db2, Strategy::SemiNaive);
                // same symbol universe names: compare by name
                let names = |p: &Program, r: &selprop_datalog::Relation| {
                    let mut v: Vec<Vec<String>> = r
                        .iter()
                        .map(|t| {
                            t.iter()
                                .map(|&c| p.symbols.const_name(c).to_owned())
                                .collect()
                        })
                        .collect();
                    v.sort();
                    v
                };
                assert_eq!(names(&orig, &want), names(&fo, &got));
            }
            Boundedness::Unbounded { .. } => panic!("finite language must be bounded"),
        }
    }

    #[test]
    fn ancestor_is_unbounded() {
        let chain = ChainProgram::parse(
            "?- anc(c, Y).\n\
             anc(X, Y) :- par(X, Y).\n\
             anc(X, Y) :- anc(X, Z), par(Z, Y).",
        )
        .unwrap();
        assert!(!boundedness(&chain).is_bounded());
    }

    #[test]
    fn convergence_profile_separates() {
        // bounded program: iterations constant in n
        let bounded = ChainProgram::parse(
            "?- p(c, Y).\n\
             p(X, Y) :- b(X, Y).\n\
             p(X, Y) :- b(X, Z), b(Z, Y).",
        )
        .unwrap();
        // rebuild per size so each database names a fresh chain; clones
        // of the same program intern identical names to identical ids
        let mut p1 = bounded.program.clone();
        let mut p2 = bounded.program.clone();
        let mut p3 = bounded.program.clone();
        let dbs = vec![chain_db(&mut p1, 3), chain_db(&mut p2, 6), chain_db(&mut p3, 9)];
        let mut with_syms = bounded.clone();
        with_syms.program.symbols = p3.symbols; // superset of constants
        let iters = convergence_iterations(&with_syms, &dbs);
        assert!(
            iters.windows(2).all(|w| w[0] == w[1]),
            "bounded: constant iterations, got {iters:?}"
        );

        // unbounded program: iterations grow
        let unbounded = ChainProgram::parse(
            "?- anc(c, Y).\n\
             anc(X, Y) :- par(X, Y).\n\
             anc(X, Y) :- anc(X, Z), par(Z, Y).",
        )
        .unwrap();
        let mut q1 = unbounded.program.clone();
        let mut q2 = unbounded.program.clone();
        let dbs2 = vec![chain_db(&mut q1, 3), chain_db(&mut q2, 8)];
        let mut u = unbounded.clone();
        u.program.symbols = q2.symbols;
        let iters2 = convergence_iterations(&u, &dbs2);
        assert!(iters2[1] > iters2[0], "unbounded: growing iterations, got {iters2:?}");
    }

    #[test]
    fn derivation_heights_separate_bounded_from_unbounded() {
        // Bounded program: max derivation-tree height is a constant
        // (here 3: p-node over one or two b-leaves) at every data size —
        // the definitional form of Section 8 boundedness.
        let bounded = ChainProgram::parse(
            "?- p(c, Y).\n\
             p(X, Y) :- b(X, Y).\n\
             p(X, Y) :- b(X, Z), b(Z, Y).",
        )
        .unwrap();
        let mut p1 = bounded.program.clone();
        let mut p2 = bounded.program.clone();
        let mut p3 = bounded.program.clone();
        let dbs = vec![chain_db(&mut p1, 3), chain_db(&mut p2, 8), chain_db(&mut p3, 16)];
        let mut with_syms = bounded.clone();
        with_syms.program.symbols = p3.symbols;
        let hs = derivation_heights(&with_syms, &dbs);
        assert!(
            hs.windows(2).all(|w| w[0] == w[1]),
            "bounded: constant tree height, got {hs:?}"
        );
        assert!(hs[0] <= 3, "p over b-leaves: height ≤ 3, got {hs:?}");

        // The FO rewrite's derivations are one rule node over EDB
        // leaves: height exactly 2, size within the decision's bound.
        if let Boundedness::Bounded { fo_program, depth_bound, .. } = boundedness(&bounded) {
            let mut fo = fo_program.clone();
            let db = chain_db(&mut fo, 8);
            let prov = Provenance::compute(&fo, &db);
            assert!(prov.num_derived() > 0);
            assert_eq!(prov.max_height(), 2, "FO form: rule node over leaves");
            for atom in prov.derived() {
                let size = prov.tree_size(&atom).expect("derived fact has a tree");
                assert!(
                    size as usize <= depth_bound + 1,
                    "FO derivation size {size} exceeds bound {depth_bound}"
                );
            }
        } else {
            panic!("finite language must be bounded");
        }

        // Unbounded program: the deepest tree tracks the chain length.
        let unbounded = ChainProgram::parse(
            "?- anc(c, Y).\n\
             anc(X, Y) :- par(X, Y).\n\
             anc(X, Y) :- anc(X, Z), par(Z, Y).",
        )
        .unwrap();
        let mut q1 = unbounded.program.clone();
        let mut q2 = unbounded.program.clone();
        let dbs2 = vec![chain_db(&mut q1, 4), chain_db(&mut q2, 12)];
        let mut u = unbounded.clone();
        u.program.symbols = q2.symbols;
        let hs2 = derivation_heights(&u, &dbs2);
        assert!(hs2[1] > hs2[0], "unbounded: growing tree height, got {hs2:?}");
        assert_eq!(hs2[1], 13, "left-linear anc: height = chain length + 1");
    }
}
