//! # selprop-core
//!
//! Selection propagation for chain Datalog programs: the primary
//! contribution of *Beeri, Kanellakis, Bancilhon, Ramakrishnan — "Bounds
//! on the Propagation of Selection into Logic Programs"* (PODS 1987 /
//! JCSS 1990), reproduced end-to-end.
//!
//! ## The paper in one paragraph
//!
//! A chain program `H` (binary recursive Datalog whose rule bodies thread
//! `X → X1 → ... → Y`) induces a context-free language `L(H)` over its
//! EDB predicates. Propagating a selection into `H` — finding an
//! equivalent program whose derived predicates are all **monadic** — is
//! possible **iff `L(H)` is regular** when the goal carries a constant
//! (`p(c,Y)`, `p(X,c)`, `p(c,c1)`, `p(c,c)`), and **iff `L(H)` is
//! finite** for the diagonal goal `p(X,X)` (Theorem 3.3). The first
//! condition is undecidable, the second decidable (Corollary 3.4).
//!
//! ## Crate map
//!
//! - [`chain`] — chain programs, goal classification, the grammar `G(H)`;
//! - [`propagate`](mod@propagate) — the decision engine: `Propagated` with a
//!   machine-checkable certificate, `Impossible` with a pumping witness,
//!   or `Unknown` with evidence (the undecidability made visible);
//! - [`rewrite`] — the constructive direction: DFA → monadic program
//!   (Example 1.1's Program A → Program D, generalized), and the finite
//!   tableaux rewrite for `p(X,X)`;
//! - [`inf_model`] — the infinite tree `IG` and Proposition 3.1 on its
//!   truncations;
//! - [`bounded`] — Proposition 8.2: FO-expressible ⇔ bounded ⇔ `L(H)`
//!   finite, with the FO form constructed;
//! - [`contain`] — Proposition 8.1: uniformity, containment and
//!   equivalence with the decidable fragments exact;
//! - [`magic_chain`] — Section 7: magic sets as language quotients
//!   `L(H)/R_i`, with the regular envelope `R(H)/R_i` fallback;
//! - [`workload`] — deterministic database generators for the experiment
//!   harness (E1–E10 in `EXPERIMENTS.md`);
//! - [`gallery`] — the paper's program corpus with ground truth, shared
//!   by examples, tests and benches.
//!
//! ## Quickstart
//!
//! ```
//! use selprop_core::chain::ChainProgram;
//! use selprop_core::propagate::{propagate, Propagation};
//!
//! let chain = ChainProgram::parse(
//!     "?- anc(john, Y).\n\
//!      anc(X, Y) :- par(X, Y).\n\
//!      anc(X, Y) :- anc(X, Z), par(Z, Y).",
//! ).unwrap();
//! match propagate(&chain).unwrap() {
//!     Propagation::Propagated { program, certificate } => {
//!         assert!(program.is_monadic());
//!         println!("{}\n-- via {}", program.render(), certificate.describe());
//!     }
//!     other => panic!("ancestors propagate: {other:?}"),
//! }
//! ```

#![warn(missing_docs)]

pub mod bounded;
pub mod chain;
pub mod contain;
pub mod gallery;
pub mod inf_model;
pub mod magic_chain;
pub mod propagate;
pub mod rewrite;
pub mod workload;

pub use chain::{ChainProgram, GoalForm};
pub use propagate::{propagate, Propagation, RegularityCertificate};
