//! Magic sets on chain programs as language quotients — Section 7.
//!
//! For a chain program `H` with goal `p(c, Y)`, each rule `i` yields a
//! "don't care" regular expression `R_i` (start with `*`, end with `*`,
//! keep the rule's terminals, replace nonterminals by `*`). The magic
//! set for the rule's first variable corresponds to the quotient
//! `L(H)/R_i`; when that quotient is regular, the magic predicate is
//! computable by monadic rules. When the quotient is not *known* regular,
//! the paper's fallback applies: quotient a regular envelope,
//! `R(H)/R_i`, instead — always regular, always a superset, so pruning
//! stays sound.
//!
//! [`analyze`] computes all of this per rule; [`transform`] applies the
//! general magic-sets rewriting (which, on chain programs with a
//! left-to-right SIPS, produces exactly the paper's displayed program)
//! and [`magic_extension_vs_language`] validates the semantic
//! reading: on any database, the magic predicate's extension is exactly
//! the set of nodes reachable from `c` by a path labeled in the
//! *prefix-closure quotient* `Pref(L(H))`-restricted envelope.

use selprop_automata::dfa::Dfa;
use selprop_automata::minimize::minimize;
use selprop_automata::ops;
use selprop_automata::regex::Regex;
use selprop_datalog::db::Database;
use selprop_datalog::eval::{answer, evaluate, Strategy};
use selprop_datalog::magic::{magic_transform, MagicProgram};
use selprop_grammar::cfg::Sym;
use selprop_grammar::quotient::right_quotient;
use selprop_grammar::regular::approximate;

use crate::chain::{ChainProgram, GoalForm};

/// Per-rule quotient analysis.
#[derive(Clone, Debug)]
pub struct RuleQuotient {
    /// Index of the rule in the chain program.
    pub rule_index: usize,
    /// The `* t1 * t2 ... *` pattern of the rule.
    pub pattern: Regex,
    /// The exact quotient `L(H)/R_i` as a CFG.
    pub quotient_grammar: selprop_grammar::Cfg,
    /// Whether the quotient grammar compiled exactly (then the quotient
    /// is certified regular).
    pub quotient_exact: bool,
    /// The envelope quotient `R(H)/R_i` — always regular, always ⊇ the
    /// exact quotient.
    pub envelope_quotient: Dfa,
}

/// Section 7 analysis of a chain program with goal `p(c, Y)`.
#[derive(Clone, Debug)]
pub struct MagicAnalysis {
    /// The Mohri–Nederhof envelope `R(H)` (exact iff `envelope_exact`).
    pub envelope: Dfa,
    /// Whether `R(H) = L(H)` was certified (strongly regular grammar).
    pub envelope_exact: bool,
    /// Per-rule quotients.
    pub rules: Vec<RuleQuotient>,
}

/// Builds the rule patterns and quotients of Section 7.
pub fn analyze(chain: &ChainProgram) -> Result<MagicAnalysis, String> {
    if !matches!(chain.goal_form, GoalForm::BoundFirst(_)) {
        return Err("Section 7 analysis assumes the goal form p(c, Y)".to_owned());
    }
    let grammar = chain.grammar();
    let approx = approximate(&grammar);
    let envelope = minimize(&approx.dfa());
    let mut rules = Vec::new();
    for (i, production) in grammar.productions.iter().enumerate() {
        // the paper's pattern: * then each symbol (terminal kept,
        // nonterminal → *), then *
        let mut pattern = Regex::sigma_star(&grammar.alphabet);
        for &s in &production.body {
            match s {
                Sym::T(t) => {
                    pattern = Regex::concat(pattern, Regex::Sym(t));
                }
                Sym::N(_) => {
                    pattern = Regex::concat(pattern, Regex::sigma_star(&grammar.alphabet));
                }
            }
        }
        pattern = Regex::concat(pattern, Regex::sigma_star(&grammar.alphabet));
        let pattern_dfa = pattern.to_dfa(&grammar.alphabet);
        let quotient_grammar = right_quotient(&grammar, &pattern_dfa);
        let q_approx = approximate(&quotient_grammar);
        let envelope_quotient = minimize(&ops::right_quotient(&envelope, &pattern_dfa));
        rules.push(RuleQuotient {
            rule_index: i,
            pattern,
            quotient_grammar,
            quotient_exact: q_approx.exact,
            envelope_quotient,
        });
    }
    Ok(MagicAnalysis {
        envelope,
        envelope_exact: approx.exact,
        rules,
    })
}

/// Applies the generalized magic transformation to the chain program
/// (producing the paper's Section 7 program shape).
pub fn transform(chain: &ChainProgram) -> Result<MagicProgram, String> {
    magic_transform(&chain.program)
}

/// Semantic validation on a concrete database: the magic predicate for
/// the goal's adornment marks exactly the nodes reachable from `c` by a
/// path whose label string is accepted by `prefix_language`
/// (the Kleene-prefix language of the binding-passing descent). Returns
/// `(magic_marked, reachable_by_prefix)` as sorted node-name lists.
pub fn magic_extension_vs_language(
    chain: &ChainProgram,
    db: &Database,
    prefix_language: &Dfa,
) -> Result<(Vec<String>, Vec<String>), String> {
    let GoalForm::BoundFirst(origin) = &chain.goal_form else {
        return Err("goal form must be p(c, Y)".to_owned());
    };
    let magic = transform(chain)?;
    let result = evaluate(&magic.program, db, Strategy::SemiNaive);
    let goal_pred = chain.goal_pred();
    let key = (goal_pred, "bf".to_owned());
    let magic_pred = magic.magic[&key];
    let mut marked: Vec<String> = result
        .idb
        .relation(magic_pred)
        .map(|rel| {
            rel.iter()
                .map(|t| magic.program.symbols.const_name(t[0]).to_owned())
                .collect()
        })
        .unwrap_or_default();
    marked.sort();
    marked.dedup();

    // reachability with label strings in prefix_language, by BFS over
    // (node, dfa state) pairs
    let grammar = chain.grammar();
    let edbs = chain.edbs();
    let sym_of_pred: Vec<(selprop_datalog::ast::Pred, selprop_automata::Symbol)> = edbs
        .iter()
        .map(|&p| {
            (
                p,
                grammar
                    .alphabet
                    .get(chain.program.symbols.pred_name(p))
                    .expect("edb in alphabet"),
            )
        })
        .collect();
    let origin_const = chain
        .program
        .symbols
        .get_constant(origin)
        .ok_or("origin constant not interned")?;
    let mut reach: std::collections::BTreeSet<(selprop_datalog::ast::Const, usize)> =
        std::collections::BTreeSet::new();
    let mut queue = std::collections::VecDeque::new();
    reach.insert((origin_const, prefix_language.start()));
    queue.push_back((origin_const, prefix_language.start()));
    while let Some((node, q)) = queue.pop_front() {
        for &(pred, sym) in &sym_of_pred {
            let Some(rel) = db.relation(pred) else { continue };
            for t in rel.iter() {
                if t[0] == node {
                    let next = (t[1], prefix_language.step(q, sym));
                    if reach.insert(next) {
                        queue.push_back(next);
                    }
                }
            }
        }
    }
    let mut reachable: Vec<String> = reach
        .iter()
        .filter(|&&(_, q)| prefix_language.is_accept(q))
        .map(|&(c, _)| chain.program.symbols.const_name(c).to_owned())
        .collect();
    reachable.sort();
    reachable.dedup();
    Ok((marked, reachable))
}


/// Section 7's "quotients correspond to monadic programs" made literal:
/// instead of the syntactic magic rewriting, guard the original rules
/// with a *monadic automaton marking*. The prefix language
/// `Pref(R(H))` of the regular envelope is compiled to a DFA; monadic
/// rules `m_q(Y) :- m_p(Z), b(Z, Y)` mark each node with the DFA states
/// reachable from `c`; every original rule gets the guard "the rule's
/// first variable is marked with a live state". Answers are preserved
/// (the guard accepts every useful prefix) and work shrinks on noisy
/// databases like the magic transformation's.
pub fn envelope_guarded_program(chain: &ChainProgram) -> Result<selprop_datalog::Program, String> {
    let GoalForm::BoundFirst(origin) = &chain.goal_form else {
        return Err("envelope guarding assumes the goal form p(c, Y)".to_owned());
    };
    let grammar = chain.grammar();
    let envelope = minimize(&approximate(&grammar).dfa());
    let prefix_dfa = minimize(&ops::prefixes(&envelope));

    let mut program = chain.program.clone();
    let edbs = chain.edbs();
    let live = prefix_dfa.live_states();
    // marking predicates per live state
    let m_pred: Vec<Option<selprop_datalog::ast::Pred>> = (0..prefix_dfa.num_states())
        .map(|q| {
            live.contains(&q)
                .then(|| program.symbols.fresh_predicate(&format!("useful{q}")))
        })
        .collect();
    let guard_pred = program.symbols.fresh_predicate("useful");
    let c = program.symbols.constant(origin);
    let vy = program.symbols.fresh_variable("Gy");
    let vz = program.symbols.fresh_variable("Gz");
    let mut new_rules: Vec<selprop_datalog::ast::Rule> = Vec::new();
    use selprop_datalog::ast::{Atom, Rule, Term};
    if let Some(p0) = m_pred[prefix_dfa.start()] {
        new_rules.push(Rule::new(Atom::new(p0, vec![Term::Const(c)]), Vec::new()));
    }
    for q in live.iter().copied() {
        for s in prefix_dfa.alphabet.symbols() {
            let q2 = prefix_dfa.step(q, s);
            let (Some(pq), Some(pq2)) = (m_pred[q], m_pred[q2]) else {
                continue;
            };
            let name = prefix_dfa.alphabet.name(s);
            let edge = *edbs
                .iter()
                .find(|&&p| program.symbols.pred_name(p) == name)
                .expect("alphabet symbol names an EDB");
            new_rules.push(Rule::new(
                Atom::new(pq2, vec![Term::Var(vy)]),
                vec![
                    Atom::new(pq, vec![Term::Var(vz)]),
                    Atom::new(edge, vec![Term::Var(vz), Term::Var(vy)]),
                ],
            ));
        }
    }
    // useful(Y) :- m_q(Y) for accepting (prefix) states
    for q in live.iter().copied() {
        if prefix_dfa.is_accept(q) {
            if let Some(pq) = m_pred[q] {
                new_rules.push(Rule::new(
                    Atom::new(guard_pred, vec![Term::Var(vy)]),
                    vec![Atom::new(pq, vec![Term::Var(vy)])],
                ));
            }
        }
    }
    // guard every original rule on its head's first variable
    for rule in &program.rules {
        let first = rule.head.args[0];
        let mut body = vec![Atom::new(guard_pred, vec![first])];
        body.extend(rule.body.iter().cloned());
        new_rules.push(Rule::new(rule.head.clone(), body));
    }
    program.rules = new_rules;
    program.validate()?;
    Ok(program)
}

/// Work comparison on a database: `(original, magic)` evaluation
/// statistics for the same goal.
pub fn work_comparison(
    chain: &ChainProgram,
    db: &Database,
) -> Result<(selprop_datalog::EvalStats, selprop_datalog::EvalStats), String> {
    let (_, orig) = answer(&chain.program, db, Strategy::SemiNaive);
    let magic = transform(chain)?;
    let (_, magical) = answer(&magic.program, db, Strategy::SemiNaive);
    Ok((orig, magical))
}

#[cfg(test)]
mod tests {
    use super::*;
    use selprop_automata::equiv::equivalent;

    fn paper_program() -> ChainProgram {
        ChainProgram::parse(
            "?- p(c, Y).\n\
             p(X, Y) :- b1(X, X1), b2(X1, Y).\n\
             p(X, Y) :- b1(X, X1), p(X1, Y1), b2(Y1, Y).",
        )
        .unwrap()
    }

    fn regex_dfa(chain: &ChainProgram, text: &str) -> Dfa {
        let mut al = chain.grammar().alphabet.clone();
        Regex::parse(text, &mut al).unwrap().to_dfa(&al)
    }

    #[test]
    fn paper_envelope_and_quotients() {
        let chain = paper_program();
        let analysis = analyze(&chain).unwrap();
        // L = b1^n b2^n is not strongly regular; envelope is b1+ b2+
        assert!(!analysis.envelope_exact);
        let tight = regex_dfa(&chain, "b1 b1* b2 b2*");
        assert!(equivalent(&analysis.envelope, &tight));
        // both envelope quotients are b1* — the paper's "positive number
        // of b1's" magic set, with the seed c included as the empty prefix
        let b1_star = regex_dfa(&chain, "b1*");
        for rq in &analysis.rules {
            assert!(
                equivalent(&rq.envelope_quotient, &b1_star),
                "rule {} quotient should be b1*",
                rq.rule_index
            );
        }
    }

    #[test]
    fn transformed_program_matches_paper_display() {
        let chain = paper_program();
        let magic = transform(&chain).unwrap();
        let text = magic.program.render();
        assert!(text.contains("m_p_bf(c)."));
        assert!(text.contains("m_p_bf(X1) :- m_p_bf(X), b1(X, X1)."));
    }

    /// Layered database: a b1-chain of `layers` nodes from c, then a
    /// b2-chain back of the same length, plus `noise` disconnected
    /// b1/b2 pairs.
    fn layered_db(chain: &mut ChainProgram, layers: usize, noise: usize) -> Database {
        let b1 = chain.program.symbols.get_predicate("b1").unwrap();
        let b2 = chain.program.symbols.get_predicate("b2").unwrap();
        let mut db = Database::new();
        let mut prev = chain.program.symbols.constant("c");
        let mut mids = vec![prev];
        for i in 1..=layers {
            let n = chain.program.symbols.constant(&format!("u{i}"));
            db.insert(b1, vec![prev, n]);
            prev = n;
            mids.push(n);
        }
        for i in 1..=layers {
            let n = chain.program.symbols.constant(&format!("d{i}"));
            db.insert(b2, vec![prev, n]);
            prev = n;
        }
        for i in 0..noise {
            let a = chain.program.symbols.constant(&format!("xa{i}"));
            let b = chain.program.symbols.constant(&format!("xb{i}"));
            db.insert(b1, vec![a, b]);
            db.insert(b2, vec![b, a]);
        }
        db
    }

    #[test]
    fn magic_extension_is_b1_star_reachability() {
        let mut chain = paper_program();
        let db = layered_db(&mut chain, 4, 6);
        let b1_star = regex_dfa(&chain, "b1*");
        let (marked, reachable) =
            magic_extension_vs_language(&chain, &db, &b1_star).unwrap();
        assert_eq!(
            marked, reachable,
            "magic set must equal b1*-reachability from c"
        );
        assert_eq!(marked.len(), 5); // c, u1..u4
    }

    #[test]
    fn magic_prunes_noise() {
        let mut chain = paper_program();
        let db = layered_db(&mut chain, 4, 40);
        let (orig, magical) = work_comparison(&chain, &db).unwrap();
        assert!(
            magical.tuples_derived < orig.tuples_derived,
            "magic must derive fewer tuples: {} vs {}",
            magical.tuples_derived,
            orig.tuples_derived
        );
    }

    #[test]
    fn magic_answers_preserved_on_layered_db() {
        let mut chain = paper_program();
        let db = layered_db(&mut chain, 3, 5);
        let (want, _) = answer(&chain.program, &db, Strategy::SemiNaive);
        let magic = transform(&chain).unwrap();
        let (got, _) = answer(&magic.program, &db, Strategy::SemiNaive);
        assert_eq!(want.sorted(), got.sorted());
        assert_eq!(want.len(), 1); // the single balanced endpoint d{layers}...
                                   // (paths: b1^k b2^k from c: exactly k=3 reaches d3?
                                   //  c->u1->u2->u3 then d1,d2,d3: b1^3 b2^3 ends at d3)
    }

    #[test]
    fn envelope_guarding_preserves_answers_and_prunes() {
        let mut chain = paper_program();
        let db = layered_db(&mut chain, 5, 30);
        let guarded = envelope_guarded_program(&chain).unwrap();
        let (want, orig_stats) = answer(&chain.program, &db, Strategy::SemiNaive);
        let (got, guard_stats) = answer(&guarded, &db, Strategy::SemiNaive);
        assert_eq!(want.sorted(), got.sorted());
        assert!(
            guard_stats.tuples_derived < orig_stats.tuples_derived + 60,
            "guarding must not blow up: {} vs {}",
            guard_stats.tuples_derived,
            orig_stats.tuples_derived
        );
        // the binary p-tuples derived under the guard are a subset
        let p = chain.goal_pred();
        let orig_eval = selprop_datalog::eval::evaluate(
            &chain.program,
            &db,
            Strategy::SemiNaive,
        );
        let guard_eval = selprop_datalog::eval::evaluate(&guarded, &db, Strategy::SemiNaive);
        let orig_p = orig_eval.idb.relation(p).unwrap();
        if let Some(guard_p) = guard_eval.idb.relation(p) {
            for t in guard_p.iter() {
                assert!(orig_p.contains(t));
            }
            assert!(guard_p.len() <= orig_p.len());
        }
    }

    #[test]
    fn envelope_guarding_on_random_graphs() {
        let chain = paper_program();
        let guarded = envelope_guarded_program(&chain).unwrap();
        for seed in 0..4u64 {
            let mut c1 = chain.clone();
            let db1 = crate::workload::random_labeled_digraph(
                &mut c1.program, &["b1", "b2"], "c", 12, 30, seed,
            );
            let mut g2 = guarded.clone();
            let db2 = crate::workload::random_labeled_digraph(
                &mut g2, &["b1", "b2"], "c", 12, 30, seed,
            );
            let (a1, _) = answer(&c1.program, &db1, Strategy::SemiNaive);
            let (a2, _) = answer(&g2, &db2, Strategy::SemiNaive);
            assert_eq!(a1.sorted(), a2.sorted(), "seed {seed}");
        }
    }

    #[test]
    fn analyze_requires_bound_first_goal() {
        let chain = ChainProgram::parse(
            "?- p(X, X).\np(X, Y) :- b(X, Y).\np(X, Y) :- p(X, Z), b(Z, Y).",
        )
        .unwrap();
        assert!(analyze(&chain).is_err());
    }

    #[test]
    fn exact_quotient_flag_for_regular_program() {
        // For a strongly regular H, the quotient grammars may or may not
        // compile exactly, but the envelope IS the language, so the
        // envelope quotient is the exact quotient.
        let chain = ChainProgram::parse(
            "?- anc(c, Y).\n\
             anc(X, Y) :- par(X, Y).\n\
             anc(X, Y) :- anc(X, Z), par(Z, Y).",
        )
        .unwrap();
        let analysis = analyze(&chain).unwrap();
        assert!(analysis.envelope_exact);
        // L = par+; pattern of rule 0 (anc → par): * par *; quotient
        // par+/(Σ* par Σ*) = par* (can always strip a suffix containing a par)
        let par_star = regex_dfa(&chain, "par*");
        assert!(equivalent(&analysis.rules[0].envelope_quotient, &par_star));
    }
}
