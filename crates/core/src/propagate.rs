//! The selection-propagation engine — Theorem 3.3 and Corollary 3.4 as an
//! API.
//!
//! Theorem 3.3: selection with a constant propagates **iff `L(H)` is
//! regular** (undecidable); selection `p(X, X)` propagates **iff `L(H)`
//! is finite** (decidable). The engine therefore returns a *trichotomy*
//! for constant goals — `Propagated` with a machine-checkable regularity
//! certificate, `Impossible` with a finiteness/pumping certificate where
//! applicable, or `Unknown` with the evidence gathered — and a genuine
//! decision for diagonal goals. `Unknown` is not a weakness of the
//! implementation: Corollary 3.4 proves no complete procedure can exist.

use selprop_automata::dfa::Dfa;
use selprop_automata::minimize::minimize;
use selprop_automata::Symbol;
use selprop_datalog::ast::Program;
use selprop_grammar::analysis::{finiteness, Finiteness, PumpWitness};
use selprop_grammar::cnf::CnfGrammar;
use selprop_grammar::regular::{approximate, is_strongly_regular};
use selprop_grammar::self_embedding::{self_embedding, SelfEmbedding};

use crate::chain::{ChainProgram, GoalForm};
use crate::rewrite::{monadic_rewrite, tableaux_rewrite};

/// How regularity of `L(H)` was established.
#[derive(Clone, Debug)]
pub enum RegularityCertificate {
    /// `L(H)` is finite (finite ⇒ regular); the words are listed.
    FiniteLanguage(Vec<Vec<Symbol>>),
    /// `G(H)` is strongly regular (every SCC purely left- or
    /// right-linear), so the Mohri–Nederhof compilation is exact.
    StronglyRegular(Dfa),
    /// `G(H)` is not self-embedding; by Chomsky's theorem `L(H)` is
    /// regular and the compilation is exact.
    NonSelfEmbedding(Dfa),
    /// The EDB alphabet is unary: every one-letter CFL is regular
    /// (Parikh), and the ultimately periodic length set was computed
    /// exactly (`selprop_grammar::unary`). Covers the paper's Program C,
    /// whose mixed self-embedding grammar hides the regular `par⁺`.
    UnaryPeriodic(Dfa),
}

impl RegularityCertificate {
    /// The DFA recognizing `L(H)` under this certificate.
    pub fn dfa(&self, chain: &ChainProgram) -> Dfa {
        match self {
            RegularityCertificate::FiniteLanguage(words) => {
                let grammar = chain.grammar();
                let mut nfa = selprop_automata::Nfa::empty(grammar.alphabet.clone());
                for w in words {
                    nfa = nfa.union(&selprop_automata::Nfa::from_word(
                        grammar.alphabet.clone(),
                        w,
                    ));
                }
                minimize(&Dfa::from_nfa(&nfa))
            }
            RegularityCertificate::StronglyRegular(d)
            | RegularityCertificate::NonSelfEmbedding(d)
            | RegularityCertificate::UnaryPeriodic(d) => d.clone(),
        }
    }

    /// A short human-readable label.
    pub fn describe(&self) -> String {
        match self {
            RegularityCertificate::FiniteLanguage(w) => {
                format!("finite language ({} words)", w.len())
            }
            RegularityCertificate::StronglyRegular(d) => {
                format!("strongly regular grammar (exact DFA, {} states)", d.num_states())
            }
            RegularityCertificate::NonSelfEmbedding(d) => format!(
                "non-self-embedding grammar (Chomsky ⇒ regular; exact DFA, {} states)",
                d.num_states()
            ),
            RegularityCertificate::UnaryPeriodic(d) => format!(
                "unary alphabet (Parikh ⇒ regular; periodic length set, DFA {} states)",
                d.num_states()
            ),
        }
    }
}

/// Evidence gathered when the engine cannot decide (the undecidable
/// region of Corollary 3.4).
#[derive(Clone, Debug)]
pub struct UndecidedEvidence {
    /// A self-embedding nonterminal of `G(H)` (why the decidable
    /// sufficient conditions did not fire).
    pub self_embedding_nonterminal: Option<String>,
    /// The Mohri–Nederhof envelope `R(H) ⊇ L(H)` (Section 7's fallback).
    pub envelope: Dfa,
    /// Lower bound on the size of any DFA for `L(H)`: a set of pairwise
    /// Myhill–Nerode-distinguishable prefixes found by sampling. A bound
    /// that keeps growing with the sampling budget is (non-conclusive)
    /// evidence of non-regularity.
    pub nerode_lower_bound: usize,
    /// All envelope words up to the sampled length were in `L(H)` — if
    /// `true`, the envelope looks exact on the sample (non-conclusive
    /// evidence of regularity).
    pub envelope_tight_on_sample: bool,
}

/// The outcome of selection propagation.
// Propagated carries a whole Program by value; the enum is built a
// handful of times per decision, so boxing (which would ripple through
// every caller's match) buys nothing.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
pub enum Propagation {
    /// An equivalent monadic program exists and was constructed.
    Propagated {
        /// The monadic Datalog program.
        program: Program,
        /// How regularity (or finiteness) was established.
        certificate: RegularityCertificate,
    },
    /// No equivalent monadic program exists.
    Impossible {
        /// The pumping certificate showing `L(H)` infinite (diagonal
        /// goals; Theorem 3.3(2) "only if").
        pump: PumpWitness,
    },
    /// The engine could not decide (possible only for constant goals —
    /// Corollary 3.4).
    Unknown(Box<UndecidedEvidence>),
}

impl Propagation {
    /// Whether a monadic rewrite was produced.
    pub fn is_propagated(&self) -> bool {
        matches!(self, Propagation::Propagated { .. })
    }
}

/// Tuning knobs for the undecidable region's evidence gathering.
#[derive(Clone, Copy, Debug)]
pub struct PropagationBudget {
    /// Maximum prefix length sampled for the Nerode lower bound.
    pub nerode_max_len: usize,
    /// Maximum word length enumerated when comparing the envelope with
    /// `L(H)`.
    pub envelope_sample_len: usize,
}

impl Default for PropagationBudget {
    fn default() -> Self {
        Self {
            nerode_max_len: 6,
            envelope_sample_len: 10,
        }
    }
}

/// Runs the propagation decision for `chain` (see [`Propagation`]).
pub fn propagate(chain: &ChainProgram) -> Result<Propagation, String> {
    propagate_with(chain, PropagationBudget::default())
}

/// [`propagate`] with an explicit evidence budget.
pub fn propagate_with(
    chain: &ChainProgram,
    budget: PropagationBudget,
) -> Result<Propagation, String> {
    let grammar = chain.grammar();
    match &chain.goal_form {
        GoalForm::Free => Err("goal p(X, Y) carries no selection to propagate".to_owned()),
        GoalForm::Diagonal => {
            // Theorem 3.3(2): decidable both ways.
            match finiteness(&grammar) {
                Finiteness::Finite(words) => {
                    let program = tableaux_rewrite(chain, &words)?;
                    debug_assert!(program.is_monadic());
                    Ok(Propagation::Propagated {
                        program,
                        certificate: RegularityCertificate::FiniteLanguage(words),
                    })
                }
                Finiteness::Infinite(pump) => Ok(Propagation::Impossible { pump }),
            }
        }
        GoalForm::BoundFirst(_) | GoalForm::BoundSecond(_) | GoalForm::BoundBoth(_, _) => {
            // 1. finite ⇒ regular
            if let Finiteness::Finite(words) = finiteness(&grammar) {
                let certificate = RegularityCertificate::FiniteLanguage(words);
                let dfa = certificate.dfa(chain);
                let program = monadic_rewrite(chain, &dfa)?;
                debug_assert!(program.is_monadic());
                return Ok(Propagation::Propagated {
                    program,
                    certificate,
                });
            }
            // 2. strongly regular ⇒ exact compilation
            if is_strongly_regular(&grammar) {
                let dfa = minimize(&approximate(&grammar).dfa());
                let program = monadic_rewrite(chain, &dfa)?;
                return Ok(Propagation::Propagated {
                    program,
                    certificate: RegularityCertificate::StronglyRegular(dfa),
                });
            }
            // 3. non-self-embedding ⇒ regular (Chomsky). After cleaning,
            // NSE implies strongly regular, so this arm fires only in the
            // (rare) gap where cleaning exposed it; keep it for the
            // certificate's sake.
            let se = self_embedding(&grammar);
            if se.is_non_self_embedding() {
                let dfa = minimize(&approximate(&grammar).dfa());
                let program = monadic_rewrite(chain, &dfa)?;
                return Ok(Propagation::Propagated {
                    program,
                    certificate: RegularityCertificate::NonSelfEmbedding(dfa),
                });
            }
            // 4. unary alphabet ⇒ regular (Parikh), decidable within the
            // size cap of the periodic-length-set construction.
            if let Some(u) = selprop_grammar::unary::unary_regularity(&grammar) {
                let dfa = u.dfa.clone();
                let program = monadic_rewrite(chain, &dfa)?;
                return Ok(Propagation::Propagated {
                    program,
                    certificate: RegularityCertificate::UnaryPeriodic(dfa),
                });
            }
            // 5. undecidable region: gather evidence.
            let envelope = minimize(&approximate(&grammar).dfa());
            let nerode = nerode_lower_bound(&grammar, budget.nerode_max_len);
            let cnf = CnfGrammar::from_cfg(&grammar);
            let envelope_tight_on_sample = envelope
                .words_up_to(budget.envelope_sample_len)
                .iter()
                .all(|w| cnf.accepts(w));
            let se_name = match se {
                SelfEmbedding::Yes { nonterminal } => Some(nonterminal),
                SelfEmbedding::No => None,
            };
            Ok(Propagation::Unknown(Box::new(UndecidedEvidence {
                self_embedding_nonterminal: se_name,
                envelope,
                nerode_lower_bound: nerode,
                envelope_tight_on_sample,
            })))
        }
    }
}

/// Counts pairwise Myhill–Nerode-distinguishable prefixes of `L(G)` found
/// by sampling prefixes and suffixes up to `max_len`: a lower bound on
/// the state count of any DFA for `L(G)`.
pub fn nerode_lower_bound(g: &selprop_grammar::Cfg, max_len: usize) -> usize {
    let cnf = CnfGrammar::from_cfg(g);
    // Candidate prefixes and probe suffixes: words in length-lexicographic
    // order, capped at 256. Generated breadth-first with an early stop so
    // the (exponential) full word set up to `max_len` is never
    // materialized — only the capped slice the signatures actually use.
    const CAP: usize = 256;
    let symbols: Vec<Symbol> = g.alphabet.symbols().collect();
    let mut all: Vec<Vec<Symbol>> = vec![vec![]];
    let mut level_start = 0;
    for _ in 0..max_len {
        if all.len() >= CAP {
            break;
        }
        let level_end = all.len();
        for wi in level_start..level_end {
            for &s in &symbols {
                let mut w2 = all[wi].clone();
                w2.push(s);
                all.push(w2);
                if all.len() >= CAP {
                    break;
                }
            }
            if all.len() >= CAP {
                break;
            }
        }
        level_start = level_end;
    }
    let prefixes: Vec<&Vec<Symbol>> = all.iter().take(CAP).collect();
    let suffixes: Vec<&Vec<Symbol>> = all.iter().take(CAP).collect();
    // signature of a prefix = acceptance vector over probe suffixes
    let mut signatures: Vec<Vec<bool>> = Vec::new();
    for p in &prefixes {
        let sig: Vec<bool> = suffixes
            .iter()
            .map(|s| {
                let mut w = (*p).clone();
                w.extend_from_slice(s);
                cnf.accepts(&w)
            })
            .collect();
        if !signatures.contains(&sig) {
            signatures.push(sig);
        }
    }
    signatures.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use selprop_datalog::db::Database;
    use selprop_datalog::eval::{answer, Strategy};

    fn check_equivalent(chain: &ChainProgram, rewrite: &Program, edges: &[(&str, &str, &str)]) {
        let run = |p: &Program| -> Vec<Vec<String>> {
            let mut p = p.clone();
            let mut db = Database::new();
            for &(b, u, v) in edges {
                let pred = p.symbols.predicate(b);
                let cu = p.symbols.constant(u);
                let cv = p.symbols.constant(v);
                db.insert(pred, vec![cu, cv]);
            }
            let (ans, _) = answer(&p, &db, Strategy::SemiNaive);
            let mut v: Vec<Vec<String>> = ans
                .iter()
                .map(|t| t.iter().map(|&c| p.symbols.const_name(c).to_owned()).collect())
                .collect();
            v.sort();
            v
        };
        assert_eq!(run(&chain.program), run(rewrite));
    }

    #[test]
    fn program_a_propagates() {
        let chain = ChainProgram::parse(
            "?- anc(john, Y).\n\
             anc(X, Y) :- par(X, Y).\n\
             anc(X, Y) :- anc(X, Z), par(Z, Y).",
        )
        .unwrap();
        match propagate(&chain).unwrap() {
            Propagation::Propagated {
                program,
                certificate,
            } => {
                assert!(program.is_monadic());
                assert!(matches!(
                    certificate,
                    RegularityCertificate::StronglyRegular(_)
                ));
                check_equivalent(
                    &chain,
                    &program,
                    &[
                        ("par", "john", "a"),
                        ("par", "a", "b"),
                        ("par", "q", "john"),
                        ("par", "u", "v"),
                    ],
                );
            }
            other => panic!("expected propagation, got {other:?}"),
        }
    }

    #[test]
    fn program_b_right_linear_propagates() {
        let chain = ChainProgram::parse(
            "?- anc(john, Y).\n\
             anc(X, Y) :- par(X, Y).\n\
             anc(X, Y) :- par(X, Z), anc(Z, Y).",
        )
        .unwrap();
        assert!(propagate(&chain).unwrap().is_propagated());
    }

    #[test]
    fn program_c_nonlinear_propagates_via_unary_arm() {
        // anc → par | anc anc: the grammar is self-embedding and mixed,
        // so the structural conditions do not fire — but the alphabet is
        // unary, so the Parikh arm decides: L = par+ is regular.
        let chain = ChainProgram::parse(
            "?- anc(john, Y).\n\
             anc(X, Y) :- par(X, Y).\n\
             anc(X, Y) :- anc(X, Z), anc(Z, Y).",
        )
        .unwrap();
        match propagate(&chain).unwrap() {
            Propagation::Propagated {
                program,
                certificate,
            } => {
                assert!(program.is_monadic());
                assert!(matches!(
                    certificate,
                    RegularityCertificate::UnaryPeriodic(_)
                ));
                // L = par+ → minimal DFA 2 live states (+ sink)
                let dfa = certificate.dfa(&chain);
                assert!(dfa.num_states() <= 3);
                check_equivalent(
                    &chain,
                    &program,
                    &[
                        ("par", "john", "a"),
                        ("par", "a", "b"),
                        ("par", "b", "c"),
                        ("par", "x", "john"),
                    ],
                );
            }
            other => panic!("expected UnaryPeriodic propagation, got {other:?}"),
        }
    }

    #[test]
    fn balanced_pairs_is_unknown_with_growing_nerode_bound() {
        let chain = ChainProgram::parse(
            "?- p(c, Y).\n\
             p(X, Y) :- b1(X, X1), b2(X1, Y).\n\
             p(X, Y) :- b1(X, X1), p(X1, X2), b2(X2, Y).",
        )
        .unwrap();
        match propagate_with(
            &chain,
            PropagationBudget {
                nerode_max_len: 7,
                envelope_sample_len: 8,
            },
        )
        .unwrap()
        {
            Propagation::Unknown(ev) => {
                // b1^n b2^n is not regular: the bound grows with budget
                // and the envelope (b1+ b2+) is visibly not tight.
                assert!(ev.nerode_lower_bound >= 6, "got {}", ev.nerode_lower_bound);
                assert!(!ev.envelope_tight_on_sample);
            }
            other => panic!("expected Unknown, got {other:?}"),
        }
    }

    #[test]
    fn diagonal_finite_propagates() {
        let chain = ChainProgram::parse(
            "?- p(X, X).\n\
             p(X, Y) :- b(X, Y).\n\
             p(X, Y) :- b(X, Z), b(Z, Y).",
        )
        .unwrap();
        match propagate(&chain).unwrap() {
            Propagation::Propagated {
                program,
                certificate,
            } => {
                assert!(program.is_monadic());
                assert!(matches!(
                    certificate,
                    RegularityCertificate::FiniteLanguage(_)
                ));
                check_equivalent(
                    &chain,
                    &program,
                    &[("b", "a", "a"), ("b", "u", "v"), ("b", "v", "u")],
                );
            }
            other => panic!("expected propagation, got {other:?}"),
        }
    }

    #[test]
    fn diagonal_infinite_is_impossible() {
        // Program CYCLE (Section 6): L = b+ infinite ⇒ impossible.
        let chain = ChainProgram::parse(
            "?- p(X, X).\n\
             p(X, Y) :- b(X, Y).\n\
             p(X, Y) :- p(X, Z), b(Z, Y).",
        )
        .unwrap();
        match propagate(&chain).unwrap() {
            Propagation::Impossible { pump } => {
                // pump words stay in L
                let cnf = CnfGrammar::from_cfg(&chain.grammar());
                for i in 0..4 {
                    assert!(cnf.accepts(&pump.word(i)));
                }
            }
            other => panic!("expected Impossible, got {other:?}"),
        }
    }

    #[test]
    fn free_goal_rejected() {
        let chain = ChainProgram::parse(
            "?- p(X, Y).\n\
             p(X, Y) :- b(X, Y).\n\
             p(X, Y) :- p(X, Z), b(Z, Y).",
        )
        .unwrap();
        assert!(propagate(&chain).is_err());
    }

    #[test]
    fn finite_language_with_constant_goal() {
        let chain = ChainProgram::parse(
            "?- p(c, Y).\n\
             p(X, Y) :- b1(X, Y).\n\
             p(X, Y) :- b1(X, Z), b2(Z, Y).",
        )
        .unwrap();
        match propagate(&chain).unwrap() {
            Propagation::Propagated {
                program,
                certificate,
            } => {
                assert!(matches!(
                    certificate,
                    RegularityCertificate::FiniteLanguage(ref w) if w.len() == 2
                ));
                check_equivalent(
                    &chain,
                    &program,
                    &[("b1", "c", "a"), ("b2", "a", "b"), ("b1", "b", "d")],
                );
            }
            other => panic!("expected propagation, got {other:?}"),
        }
    }

    #[test]
    fn nerode_bound_on_regular_language_is_bounded() {
        let g = selprop_grammar::Cfg::parse("anc -> par | anc par").unwrap();
        let b4 = nerode_lower_bound(&g, 4);
        let b6 = nerode_lower_bound(&g, 6);
        assert_eq!(b4, b6, "regular language: bound saturates");
        assert!(b4 <= 3);
    }

    #[test]
    fn nerode_bound_on_nonregular_language_grows() {
        let g = selprop_grammar::Cfg::parse("p -> b1 b2 | b1 p b2").unwrap();
        let b3 = nerode_lower_bound(&g, 3);
        let b6 = nerode_lower_bound(&g, 6);
        assert!(b6 > b3, "b1^n b2^n: bound must grow ({b3} vs {b6})");
    }

    #[test]
    fn same_constant_boolean_goal_p_c_c() {
        // the paper's fourth constant form: p(c, c) — does a word of
        // L(H) loop from c back to c?
        let chain = ChainProgram::parse(
            "?- p(home, home).\n\
             p(X, Y) :- b(X, Y).\n\
             p(X, Y) :- p(X, Z), b(Z, Y).",
        )
        .unwrap();
        let Propagation::Propagated { program, .. } = propagate(&chain).unwrap() else {
            panic!("b+ is regular");
        };
        assert!(program.is_monadic());
        assert_eq!(program.goal.arity(), 0);
        // positive: a cycle through home; negative: home on a dead end
        check_equivalent(
            &chain,
            &program,
            &[("b", "home", "x"), ("b", "x", "home"), ("b", "y", "z")],
        );
        check_equivalent(&chain, &program, &[("b", "home", "x"), ("b", "x", "y")]);
    }

    #[test]
    fn multi_idb_chain_propagates() {
        // two mutually recursive IDBs, strongly regular: q = (b1 b2)+
        let chain = ChainProgram::parse(
            "?- q(c, Y).\n\
             q(X, Y) :- b1(X, Z), r(Z, Y).\n\
             r(X, Y) :- b2(X, Y).\n\
             r(X, Y) :- b2(X, Z), q2(Z, Y).\n\
             q2(X, Y) :- b1(X, Z), r(Z, Y).",
        )
        .unwrap();
        let Propagation::Propagated { program, .. } = propagate(&chain).unwrap() else {
            panic!("right-linear multi-IDB should propagate");
        };
        assert!(program.is_monadic());
        check_equivalent(
            &chain,
            &program,
            &[
                ("b1", "c", "a"),
                ("b2", "a", "b"),
                ("b1", "b", "d"),
                ("b2", "d", "e"),
                ("b2", "c", "w"), // wrong first letter
            ],
        );
    }

    #[test]
    fn words_up_to_sanity() {
        // decision path 1 exercises words_up_to indirectly; pin it here
        let chain = ChainProgram::parse(
            "?- p(c, Y).\n\
             p(X, Y) :- b1(X, Y).\n\
             p(X, Y) :- b1(X, Z), b2(Z, Y).",
        )
        .unwrap();
        let words = selprop_grammar::analysis::words_up_to(&chain.grammar(), 3);
        assert_eq!(words.len(), 2);
    }
}
