//! The infinite structure `IG` (Section 3) and its finite truncations.
//!
//! `IG` is the complete infinite `Σ`-labeled tree: one node per string of
//! `Σ*`, rooted at the origin `c` (the empty string), with exactly one
//! outgoing edge per EDB label at every node. Proposition 3.1:
//! `h(IG) = H(IG) = L(H)` for any program `h` finitely equivalent to a
//! chain program `H` with goal `p(c, Y)`.
//!
//! `IG` is infinite, but Lemma 3.2 says every derivation lives in a
//! finite subgraph, and for a chain program the derivation for node `w`
//! lives entirely on the path from the root to `w`. Hence the depth-`n`
//! truncation `IG_n` (all strings of length ≤ n) computes
//! `H(IG_n) = L(H) ∩ Σ^{≤n}` **exactly** — which is what
//! [`check_proposition_3_1`] verifies against the grammar-side
//! enumeration of `L(H)`.

use std::collections::HashMap;

use selprop_automata::Symbol;
use selprop_datalog::ast::{Const, Pred};
use selprop_datalog::db::Database;
use selprop_datalog::eval::{answer, Strategy};

use crate::chain::{ChainProgram, GoalForm};

/// A materialized truncation `IG_n`.
#[derive(Clone, Debug)]
pub struct IgTruncation {
    /// The database (one binary relation per EDB).
    pub db: Database,
    /// Depth of the truncation.
    pub depth: usize,
    /// Node constant ↔ label string, in BFS order (root first).
    pub nodes: Vec<(Const, Vec<Symbol>)>,
}

/// Builds `IG_n` for the chain program's EDB alphabet, naming the root
/// after the goal's constant (so the program's `p(c, Y)` goal applies
/// directly). Node count is `(kⁿ⁺¹-1)/(k-1)` for `k` EDBs — keep `n`
/// small for multi-letter alphabets.
pub fn ig_truncation(chain: &ChainProgram, depth: usize) -> (ChainProgram, IgTruncation) {
    let origin = match &chain.goal_form {
        GoalForm::BoundFirst(c) => c.clone(),
        GoalForm::BoundBoth(c, _) => c.clone(),
        _ => "c".to_owned(),
    };
    let mut chain = chain.clone();
    let edbs = chain.edbs();
    let grammar_alphabet = chain.grammar().alphabet.clone();
    let pred_of: HashMap<Symbol, Pred> = grammar_alphabet
        .symbols()
        .map(|s| {
            let name = grammar_alphabet.name(s).to_owned();
            let p = *edbs
                .iter()
                .find(|&&p| chain.program.symbols.pred_name(p) == name)
                .expect("alphabet symbol names an EDB");
            (s, p)
        })
        .collect();

    let mut db = Database::new();
    let root = chain.program.symbols.constant(&origin);
    let mut nodes: Vec<(Const, Vec<Symbol>)> = vec![(root, Vec::new())];
    let mut frontier: Vec<(Const, Vec<Symbol>)> = nodes.clone();
    for _ in 0..depth {
        let mut next = Vec::new();
        for (parent, word) in &frontier {
            for s in grammar_alphabet.symbols() {
                let mut w2 = word.clone();
                w2.push(s);
                let name = render_node(&grammar_alphabet, &w2);
                let child = chain.program.symbols.constant(&name);
                db.insert(pred_of[&s], vec![*parent, child]);
                next.push((child, w2));
            }
        }
        nodes.extend(next.iter().cloned());
        frontier = next;
    }
    (
        chain,
        IgTruncation {
            db,
            depth,
            nodes,
        },
    )
}


/// Section 4 meets Section 5: evaluates an arbitrary **monadic** program
/// `h` (chain EDBs, origin constant, unary goal) on the truncation
/// `IG_n` and returns the answer nodes as label strings — a finite
/// approximation of `h(IG)`, which Lemma 4.1 proves regular via the
/// corridor/pigeonhole automaton. The test suite cross-checks this
/// against the independent WS1S route (`selprop_ws1s::encode`): both
/// must agree on `h(IG) ∩ Σ^{≤n}`.
pub fn monadic_on_ig(
    h: &selprop_datalog::Program,
    origin: &str,
    edb_names: &[&str],
    depth: usize,
) -> Result<Vec<Vec<Symbol>>, String> {
    if !h.is_monadic() {
        return Err("Lemma 4.1 concerns monadic programs".to_owned());
    }
    let mut h = h.clone();
    let alphabet = selprop_automata::Alphabet::from_names(edb_names.iter().copied());
    let preds: Vec<Pred> = edb_names.iter().map(|n| h.symbols.predicate(n)).collect();
    let mut db = Database::new();
    let root = h.symbols.constant(origin);
    let mut nodes: Vec<(Const, Vec<Symbol>)> = vec![(root, Vec::new())];
    let mut frontier = nodes.clone();
    for _ in 0..depth {
        let mut next = Vec::new();
        for (parent, word) in &frontier {
            for (i, s) in alphabet.symbols().enumerate() {
                let mut w2 = word.clone();
                w2.push(s);
                let name = render_node(&alphabet, &w2);
                let child = h.symbols.constant(&name);
                db.insert(preds[i], vec![*parent, child]);
                next.push((child, w2));
            }
        }
        nodes.extend(next.iter().cloned());
        frontier = next;
    }
    let (ans, _) = answer(&h, &db, Strategy::SemiNaive);
    if ans.arity() != 1 {
        return Err("expected a unary goal".to_owned());
    }
    let mut out: Vec<Vec<Symbol>> = nodes
        .iter()
        .filter(|(c, _)| ans.contains(std::slice::from_ref(c)))
        .map(|(_, w)| w.clone())
        .collect();
    out.sort_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));
    Ok(out)
}

fn render_node(al: &selprop_automata::Alphabet, word: &[Symbol]) -> String {
    let mut s = String::from("n");
    for &sym in word {
        s.push('_');
        s.push_str(al.name(sym));
    }
    s
}

/// Evaluates `H` on `IG_n` and returns the answer nodes as label strings
/// (the `H(IG)` of Proposition 3.1, truncated).
pub fn h_of_ig(chain: &ChainProgram, depth: usize) -> Vec<Vec<Symbol>> {
    let (chain, trunc) = ig_truncation(chain, depth);
    let (ans, _) = answer(&chain.program, &trunc.db, Strategy::SemiNaive);
    let mut out: Vec<Vec<Symbol>> = trunc
        .nodes
        .iter()
        .filter(|(c, _)| ans.contains(std::slice::from_ref(c)))
        .map(|(_, w)| w.clone())
        .collect();
    out.sort_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));
    out
}

/// Proposition 3.1, checked on the truncation: `H(IG_n)` equals
/// `L(H) ∩ Σ^{≤n}` (grammar-side enumeration). Returns the two sets for
/// reporting; they must be equal.
pub fn check_proposition_3_1(
    chain: &ChainProgram,
    depth: usize,
) -> (Vec<Vec<Symbol>>, Vec<Vec<Symbol>>, bool) {
    let from_ig = h_of_ig(chain, depth);
    let from_grammar = chain.language_words(depth);
    let ok = from_ig == from_grammar;
    (from_ig, from_grammar, ok)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ancestor_on_ig() {
        let chain = ChainProgram::parse(
            "?- anc(c, Y).\n\
             anc(X, Y) :- par(X, Y).\n\
             anc(X, Y) :- anc(X, Z), par(Z, Y).",
        )
        .unwrap();
        let (ig, grammar, ok) = check_proposition_3_1(&chain, 5);
        assert!(ok, "IG {ig:?} vs grammar {grammar:?}");
        assert_eq!(ig.len(), 5); // par, par², ..., par⁵
    }

    #[test]
    fn balanced_pairs_on_ig() {
        let chain = ChainProgram::parse(
            "?- p(c, Y).\n\
             p(X, Y) :- b1(X, X1), b2(X1, Y).\n\
             p(X, Y) :- b1(X, X1), p(X1, X2), b2(X2, Y).",
        )
        .unwrap();
        let (ig, _, ok) = check_proposition_3_1(&chain, 6);
        assert!(ok);
        assert_eq!(ig.len(), 3); // b1b2, b1²b2², b1³b2³
    }

    #[test]
    fn nonlinear_program_c_on_ig() {
        // Program C has the same language par+ — Prop 3.1 sees through
        // the rule shape.
        let chain = ChainProgram::parse(
            "?- anc(c, Y).\n\
             anc(X, Y) :- par(X, Y).\n\
             anc(X, Y) :- anc(X, Z), anc(Z, Y).",
        )
        .unwrap();
        let (ig, _, ok) = check_proposition_3_1(&chain, 4);
        assert!(ok);
        assert_eq!(ig.len(), 4);
    }

    #[test]
    fn truncation_size() {
        let chain = ChainProgram::parse(
            "?- p(c, Y).\n\
             p(X, Y) :- b1(X, X1), b2(X1, Y).\n\
             p(X, Y) :- b1(X, X1), p(X1, X2), b2(X2, Y).",
        )
        .unwrap();
        let (_, trunc) = ig_truncation(&chain, 3);
        // binary alphabet: 1 + 2 + 4 + 8 = 15 nodes, 14 edges
        assert_eq!(trunc.nodes.len(), 15);
        assert_eq!(trunc.db.num_facts(), 14);
    }

    #[test]
    fn lemma_4_1_cross_checks_lemma_5_1() {
        // h(IG) via direct truncation evaluation (Section 4's object)
        // must agree with Language(φ_h) from the WS1S route (Section 5)
        // on all words of length ≤ depth - the two lower-bound proofs
        // computing the same regular language two ways.
        let sources = [
            (
                "?- ancjohn(Y).\n\
                 ancjohn(Y) :- par(john, Y).\n\
                 ancjohn(Y) :- ancjohn(Z), par(Z, Y).",
                "john",
                vec!["par"],
                6usize,
            ),
            (
                "?- q2(Y).\n\
                 q1(Y) :- b1(c, Y).\n\
                 q1(Y) :- q2(Z), b1(Z, Y).\n\
                 q2(Y) :- q1(Z), b2(Z, Y).",
                "c",
                vec!["b1", "b2"],
                6usize,
            ),
        ];
        for (src, origin, edbs, depth) in sources {
            let h = selprop_datalog::parser::parse_program(src).unwrap();
            let ig_words =
                monadic_on_ig(&h, origin, &edbs, depth).expect("monadic program on IG");
            let enc = selprop_ws1s::encode::encode_monadic_program(&h, origin).unwrap();
            let lang = selprop_ws1s::encode::extract_language(&enc);
            // compare word sets up to the truncation depth; both
            // alphabets intern EDBs in the same order
            let ws1s_words: Vec<Vec<Symbol>> = lang.words_up_to(depth);
            let mut ws1s_sorted = ws1s_words;
            ws1s_sorted.sort_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));
            assert_eq!(ig_words, ws1s_sorted, "Sections 4 and 5 disagree for {src}");
        }
    }

    #[test]
    fn finite_language_saturates() {
        let chain = ChainProgram::parse(
            "?- p(c, Y).\n\
             p(X, Y) :- b1(X, Y).\n\
             p(X, Y) :- b1(X, Z), b2(Z, Y).",
        )
        .unwrap();
        let at3 = h_of_ig(&chain, 3);
        let at5 = h_of_ig(&chain, 5);
        assert_eq!(at3, at5, "finite language: deeper truncations add nothing");
        assert_eq!(at3.len(), 2);
    }
}
