//! Workload generators for the experiment harness (E1–E10).
//!
//! All generators are deterministic given a seed and intern their node
//! constants into the target program's symbol table, so the same
//! generator call against two programs sharing a symbol-space clone
//! produces identical databases.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use selprop_datalog::ast::{Const, Pred, Program};
use selprop_datalog::db::Database;

/// A named edge to insert: `(edb, from, to)`.
pub type Edge = (String, usize, usize);

/// Interns `n` node constants `v0..v{n-1}` and inserts the given edges.
pub fn materialize(program: &mut Program, n: usize, edges: &[Edge]) -> Database {
    let ids: Vec<Const> = (0..n)
        .map(|i| program.symbols.constant(&format!("v{i}")))
        .collect();
    let mut db = Database::new();
    for (name, a, b) in edges {
        let pred = program.symbols.predicate(name);
        db.insert(pred, vec![ids[*a], ids[*b]]);
    }
    db
}

/// A simple chain `c → v1 → ... → vn` on one EDB, rooted at a named
/// constant (Example 1.1 style).
pub fn chain(program: &mut Program, edb: &str, root: &str, n: usize) -> Database {
    let pred = program.symbols.predicate(edb);
    let mut db = Database::new();
    let mut prev = program.symbols.constant(root);
    for i in 1..=n {
        let c = program.symbols.constant(&format!("v{i}"));
        db.insert(pred, vec![prev, c]);
        prev = c;
    }
    db
}

/// A random forest of parent edges: every node except roots has exactly
/// one parent among earlier nodes; the named root is node 0.
pub fn random_forest(
    program: &mut Program,
    edb: &str,
    root: &str,
    n: usize,
    seed: u64,
) -> Database {
    let pred = program.symbols.predicate(edb);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();
    let mut ids: Vec<Const> = Vec::with_capacity(n);
    ids.push(program.symbols.constant(root));
    for i in 1..n {
        ids.push(program.symbols.constant(&format!("v{i}")));
        let parent = rng.gen_range(0..i);
        db.insert(pred, vec![ids[parent], ids[i]]);
    }
    db
}

/// A random labeled digraph: `m` edges over `n` nodes, labels drawn
/// uniformly from `edbs`; node 0 is the named root.
pub fn random_labeled_digraph(
    program: &mut Program,
    edbs: &[&str],
    root: &str,
    n: usize,
    m: usize,
    seed: u64,
) -> Database {
    let preds: Vec<Pred> = edbs.iter().map(|e| program.symbols.predicate(e)).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();
    let mut ids: Vec<Const> = Vec::with_capacity(n);
    ids.push(program.symbols.constant(root));
    for i in 1..n {
        ids.push(program.symbols.constant(&format!("v{i}")));
    }
    for _ in 0..m {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        let p = preds[rng.gen_range(0..preds.len())];
        db.insert(p, vec![ids[a], ids[b]]);
    }
    db
}

/// The Section 7 layered structure: a `b1`-chain of `layers` edges from
/// the root, a `b2`-chain of `layers` edges continuing from its end, and
/// `noise` disconnected `b1`/`b2` pairs (irrelevant to the root's query).
pub fn layered_b1_b2(
    program: &mut Program,
    root: &str,
    layers: usize,
    noise: usize,
) -> Database {
    let b1 = program.symbols.predicate("b1");
    let b2 = program.symbols.predicate("b2");
    let mut db = Database::new();
    let mut prev = program.symbols.constant(root);
    for i in 1..=layers {
        let c = program.symbols.constant(&format!("u{i}"));
        db.insert(b1, vec![prev, c]);
        prev = c;
    }
    for i in 1..=layers {
        let c = program.symbols.constant(&format!("d{i}"));
        db.insert(b2, vec![prev, c]);
        prev = c;
    }
    for i in 0..noise {
        let a = program.symbols.constant(&format!("xa{i}"));
        let b = program.symbols.constant(&format!("xb{i}"));
        db.insert(b1, vec![a, b]);
        db.insert(b2, vec![b, a]);
    }
    db
}

/// A layered complete-bipartite DAG on one EDB: `layers + 1` ranks of
/// `width` nodes, every node of rank `i` pointing to every node of rank
/// `i + 1`, with the named root feeding rank 0.
///
/// The wall-clock stress generator: `layers·width²` edges produce
/// `Θ(layers²·width²)` transitive-closure facts (e.g. `layers = 72,
/// width = 20` → 28_800 edges, >10⁶ derived `anc` tuples), so a full
/// ancestor run exercises the storage layer at scale from a tiny input.
/// Deterministic — no seed.
pub fn layered_dag(
    program: &mut Program,
    edb: &str,
    root: &str,
    layers: usize,
    width: usize,
) -> Database {
    let pred = program.symbols.predicate(edb);
    let mut db = Database::new();
    let rank: Vec<Vec<Const>> = (0..=layers)
        .map(|l| {
            (0..width)
                .map(|i| program.symbols.constant(&format!("l{l}_{i}")))
                .collect()
        })
        .collect();
    let r = program.symbols.constant(root);
    for &c in &rank[0] {
        db.insert(pred, vec![r, c]);
    }
    for l in 0..layers {
        for &a in &rank[l] {
            for &b in &rank[l + 1] {
                db.insert(pred, vec![a, b]);
            }
        }
    }
    db
}

/// A union of disjoint directed cycles with the given lengths, on one EDB
/// (the Section 6 / E3 structures).
pub fn cycles(program: &mut Program, edb: &str, lengths: &[usize]) -> Database {
    let pred = program.symbols.predicate(edb);
    let mut db = Database::new();
    let mut base = 0usize;
    for (ci, &len) in lengths.iter().enumerate() {
        let ids: Vec<Const> = (0..len)
            .map(|i| program.symbols.constant(&format!("c{ci}_{i}")))
            .collect();
        for i in 0..len {
            db.insert(pred, vec![ids[i], ids[(i + 1) % len]]);
        }
        base += len;
    }
    let _ = base;
    db
}

/// A "wide" database: a relevant chain from the root plus many irrelevant
/// chains (the magic-sets pruning scenario of E1/E5).
pub fn wide(
    program: &mut Program,
    edb: &str,
    root: &str,
    relevant: usize,
    islands: usize,
    island_len: usize,
) -> Database {
    let pred = program.symbols.predicate(edb);
    let mut db = chain(program, edb, root, relevant);
    for k in 0..islands {
        let mut prev = program.symbols.constant(&format!("i{k}_0"));
        for i in 1..=island_len {
            let c = program.symbols.constant(&format!("i{k}_{i}"));
            db.insert(pred, vec![prev, c]);
            prev = c;
        }
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use selprop_datalog::parser::parse_program;

    fn anc_program() -> Program {
        parse_program(
            "?- anc(c, Y).\nanc(X, Y) :- par(X, Y).\nanc(X, Y) :- anc(X, Z), par(Z, Y).",
        )
        .unwrap()
    }

    #[test]
    fn chain_has_n_edges() {
        let mut p = anc_program();
        let db = chain(&mut p, "par", "c", 7);
        assert_eq!(db.num_facts(), 7);
    }

    #[test]
    fn forest_is_connected_from_root() {
        let mut p = anc_program();
        let db = random_forest(&mut p, "par", "c", 50, 42);
        assert_eq!(db.num_facts(), 49); // n-1 edges
        let (ans, _) = selprop_datalog::eval::answer(
            &p,
            &db,
            selprop_datalog::eval::Strategy::SemiNaive,
        );
        assert_eq!(ans.len(), 49, "every non-root is an answer in a tree");
    }

    #[test]
    fn deterministic_given_seed() {
        let mut p1 = anc_program();
        let mut p2 = anc_program();
        let d1 = random_labeled_digraph(&mut p1, &["par"], "c", 20, 40, 7);
        let d2 = random_labeled_digraph(&mut p2, &["par"], "c", 20, 40, 7);
        assert_eq!(d1.num_facts(), d2.num_facts());
    }

    #[test]
    fn layered_counts() {
        let mut p = parse_program(
            "?- p(c, Y).\np(X, Y) :- b1(X, X1), b2(X1, Y).\np(X, Y) :- b1(X, X1), p(X1, X2), b2(X2, Y).",
        )
        .unwrap();
        let db = layered_b1_b2(&mut p, "c", 5, 3);
        assert_eq!(db.num_facts(), 5 + 5 + 6);
    }

    #[test]
    fn layered_dag_counts_and_closure() {
        let mut p = anc_program();
        let db = layered_dag(&mut p, "par", "c", 3, 4);
        assert_eq!(db.num_facts(), 4 + 3 * 16);
        let result = selprop_datalog::eval::evaluate(
            &p,
            &db,
            selprop_datalog::eval::Strategy::SemiNaive,
        );
        let anc = p.symbols.get_predicate("anc").unwrap();
        // closure: root reaches all 16 nodes; rank i reaches all deeper
        // ranks: 16 + 4*(3+2+1)*4 = 16 + 96
        assert_eq!(result.idb.relation(anc).unwrap().len(), 16 + 96);
    }

    #[test]
    fn cycles_counts() {
        let mut p = parse_program(
            "?- p(X, X).\np(X, Y) :- b(X, Y).\np(X, Y) :- p(X, Z), b(Z, Y).",
        )
        .unwrap();
        let db = cycles(&mut p, "b", &[3, 5]);
        assert_eq!(db.num_facts(), 8);
    }

    #[test]
    fn wide_counts() {
        let mut p = anc_program();
        let db = wide(&mut p, "par", "c", 4, 3, 5);
        assert_eq!(db.num_facts(), 4 + 15);
    }
}
