//! The paper's program corpus, with ground truth.
//!
//! Every numbered example and construction in the paper refers to a small
//! set of chain programs. This module collects them (plus the boundary
//! cases the test suite exercises) as named [`GalleryEntry`] values with
//! machine-readable ground truth — what `L(H)` is, whether it is
//! regular/finite, and what the propagation engine should conclude. The
//! examples, tests and benches all draw from here.

use crate::chain::ChainProgram;

/// Ground truth about `L(H)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LanguageClass {
    /// Finite language.
    Finite,
    /// Infinite but regular.
    Regular,
    /// Context-free, not regular.
    NonRegular,
}

/// What the propagation engine is expected to return.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExpectedOutcome {
    /// `Propagation::Propagated`.
    Propagated,
    /// `Propagation::Impossible` (diagonal goal, infinite language).
    Impossible,
    /// `Propagation::Unknown` (constant goal, regularity not established
    /// — or genuinely non-regular).
    Unknown,
}

/// A named gallery program.
#[derive(Clone, Debug)]
pub struct GalleryEntry {
    /// Short identifier (used in bench labels).
    pub name: &'static str,
    /// Where in the paper it comes from.
    pub provenance: &'static str,
    /// Program source.
    pub source: &'static str,
    /// A human-readable description of `L(H)`.
    pub language: &'static str,
    /// Ground-truth classification of `L(H)`.
    pub class: LanguageClass,
    /// Expected engine outcome.
    pub expected: ExpectedOutcome,
}

impl GalleryEntry {
    /// Parses the program.
    pub fn chain(&self) -> ChainProgram {
        ChainProgram::parse(self.source).expect("gallery entries are valid chain programs")
    }
}

/// The full gallery.
pub fn gallery() -> Vec<GalleryEntry> {
    vec![
        GalleryEntry {
            name: "program_a",
            provenance: "Example 1.1, Program A",
            source: "?- anc(john, Y).\n\
                     anc(X, Y) :- par(X, Y).\n\
                     anc(X, Y) :- anc(X, Z), par(Z, Y).",
            language: "par+ (left-linear)",
            class: LanguageClass::Regular,
            expected: ExpectedOutcome::Propagated,
        },
        GalleryEntry {
            name: "program_b",
            provenance: "Example 1.1, Program B",
            source: "?- anc(john, Y).\n\
                     anc(X, Y) :- par(X, Y).\n\
                     anc(X, Y) :- par(X, Z), anc(Z, Y).",
            language: "par+ (right-linear)",
            class: LanguageClass::Regular,
            expected: ExpectedOutcome::Propagated,
        },
        GalleryEntry {
            name: "program_c",
            provenance: "Example 1.1, Program C",
            source: "?- anc(john, Y).\n\
                     anc(X, Y) :- par(X, Y).\n\
                     anc(X, Y) :- anc(X, Z), anc(Z, Y).",
            language: "par+ (nonlinear grammar; unary Parikh arm decides)",
            class: LanguageClass::Regular,
            expected: ExpectedOutcome::Propagated,
        },
        GalleryEntry {
            name: "balanced",
            provenance: "Section 7 worked example",
            source: "?- p(c, Y).\n\
                     p(X, Y) :- b1(X, X1), b2(X1, Y).\n\
                     p(X, Y) :- b1(X, X1), p(X1, X2), b2(X2, Y).",
            language: "b1^n b2^n, n ≥ 1",
            class: LanguageClass::NonRegular,
            expected: ExpectedOutcome::Unknown,
        },
        GalleryEntry {
            name: "cycle_program",
            provenance: "Section 6, Program CYCLE",
            source: "?- p(X, X).\n\
                     p(X, Y) :- b(X, Y).\n\
                     p(X, Y) :- p(X, Z), b(Z, Y).",
            language: "b+ under the diagonal selection",
            class: LanguageClass::Regular,
            expected: ExpectedOutcome::Impossible,
        },
        GalleryEntry {
            name: "finite_two_words",
            provenance: "finiteness boundary (Thm 3.3(2), Prop 8.2)",
            source: "?- p(c, Y).\n\
                     p(X, Y) :- b1(X, Y).\n\
                     p(X, Y) :- b1(X, Z), b2(Z, Y).",
            language: "{b1, b1 b2}",
            class: LanguageClass::Finite,
            expected: ExpectedOutcome::Propagated,
        },
        GalleryEntry {
            name: "finite_diagonal",
            provenance: "tableaux rewrite case (Thm 3.3(2) 'if')",
            source: "?- p(X, X).\n\
                     p(X, Y) :- b(X, Y).\n\
                     p(X, Y) :- b(X, Z1), b(Z1, Z2), b(Z2, Y).",
            language: "{b, b^3} under the diagonal selection",
            class: LanguageClass::Finite,
            expected: ExpectedOutcome::Propagated,
        },
        GalleryEntry {
            name: "b1_b2star",
            provenance: "left-linear two-EDB family (E2)",
            source: "?- p(c, Y).\n\
                     p(X, Y) :- b1(X, Y).\n\
                     p(X, Y) :- p(X, Z), b2(Z, Y).",
            language: "b1 b2*",
            class: LanguageClass::Regular,
            expected: ExpectedOutcome::Propagated,
        },
        GalleryEntry {
            name: "even_paths",
            provenance: "containment probe (Prop 8.1 tests)",
            source: "?- e(c, Y).\n\
                     e(X, Y) :- par(X, Z), par(Z, Y).\n\
                     e(X, Y) :- e(X, Z), par(Z, W), par(W, Y).",
            language: "(par par)+",
            class: LanguageClass::Regular,
            expected: ExpectedOutcome::Propagated,
        },
        GalleryEntry {
            name: "palindromic",
            provenance: "a further non-regular family",
            source: "?- p(c, Y).\n\
                     p(X, Y) :- b1(X, X1), b1(X1, Y).\n\
                     p(X, Y) :- b2(X, X1), b2(X1, Y).\n\
                     p(X, Y) :- b1(X, X1), p(X1, X2), b1(X2, Y).\n\
                     p(X, Y) :- b2(X, X1), p(X1, X2), b2(X2, Y).",
            language: "even-length palindromes over {b1, b2}",
            class: LanguageClass::NonRegular,
            expected: ExpectedOutcome::Unknown,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::propagate::{propagate, Propagation};
    use selprop_grammar::analysis::{finiteness, Finiteness};

    #[test]
    fn gallery_parses() {
        for entry in gallery() {
            let chain = entry.chain();
            assert!(!chain.program.rules.is_empty(), "{}", entry.name);
        }
    }

    #[test]
    fn finiteness_ground_truth() {
        for entry in gallery() {
            let g = entry.chain().grammar();
            let is_finite = matches!(finiteness(&g), Finiteness::Finite(_));
            assert_eq!(
                is_finite,
                entry.class == LanguageClass::Finite,
                "finiteness mismatch for {}",
                entry.name
            );
        }
    }

    #[test]
    fn engine_matches_expected_outcomes() {
        for entry in gallery() {
            let outcome = propagate(&entry.chain()).unwrap();
            let got = match outcome {
                Propagation::Propagated { .. } => ExpectedOutcome::Propagated,
                Propagation::Impossible { .. } => ExpectedOutcome::Impossible,
                Propagation::Unknown(_) => ExpectedOutcome::Unknown,
            };
            assert_eq!(got, entry.expected, "outcome mismatch for {}", entry.name);
        }
    }

    #[test]
    fn propagated_entries_yield_monadic_programs() {
        for entry in gallery() {
            if entry.expected != ExpectedOutcome::Propagated {
                continue;
            }
            let Propagation::Propagated { program, .. } = propagate(&entry.chain()).unwrap()
            else {
                panic!("{} should propagate", entry.name);
            };
            assert!(program.is_monadic(), "{}", entry.name);
            assert!(program.validate().is_ok(), "{}", entry.name);
        }
    }

    #[test]
    fn nonregular_entries_have_growing_nerode_bounds() {
        use crate::propagate::nerode_lower_bound;
        for entry in gallery() {
            if entry.class != LanguageClass::NonRegular {
                continue;
            }
            let g = entry.chain().grammar();
            let small = nerode_lower_bound(&g, 3);
            let large = nerode_lower_bound(&g, 6);
            assert!(
                large > small,
                "{}: Nerode bound should grow ({} vs {})",
                entry.name,
                small,
                large
            );
        }
    }

    #[test]
    fn names_are_unique() {
        let names: Vec<&str> = gallery().iter().map(|e| e.name).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(names.len(), dedup.len());
    }
}
