//! Containment and equivalence of chain programs (Proposition 8.1 and
//! the surrounding discussion).
//!
//! Shmueli (ref.\[25\]) showed finite-query containment of chain programs
//! undecidable by reduction from CFL containment; Prop. 8.1 sharpens this
//! to **uniform** chain programs via Blattner's sentential-form theorem.
//! This module implements:
//!
//! - the uniformity check and the uniformizing transformation,
//! - containment/equivalence testing with the decidable fragments done
//!   exactly (both languages finite; both grammars compiling exactly to
//!   DFAs) and a bounded refutation search elsewhere — `Unknown` marks
//!   the undecidable region, as in the propagation engine,
//! - the sentential-form reduction objects (for the record and the
//!   experiments).

use selprop_automata::equiv;
use selprop_automata::minimize::minimize;
use selprop_grammar::analysis::{finiteness, words_up_to, Finiteness};
use selprop_grammar::cnf::CnfGrammar;
use selprop_grammar::regular::approximate;

use crate::chain::ChainProgram;

/// Outcome of a containment test `L(H1) ⊆ L(H2)` (which, for chain
/// programs with matching goals, coincides with finite query containment
/// — the claim of ref.\[25\] our Section 3 machinery relies on).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Containment {
    /// Containment holds (with a decidable certificate).
    Contained,
    /// A counterexample word in `L(H1) \ L(H2)`.
    NotContained(Vec<selprop_automata::Symbol>),
    /// Undecidable region: no counterexample up to the search bound, but
    /// no certificate either.
    Unknown,
}

/// Tests `L(H1) ⊆ L(H2)`; both programs must share their EDB alphabet
/// (same names, same order).
pub fn contained(h1: &ChainProgram, h2: &ChainProgram, search_len: usize) -> Containment {
    let g1 = h1.grammar();
    let g2 = h2.grammar();
    assert_eq!(
        g1.alphabet, g2.alphabet,
        "containment requires a shared EDB alphabet"
    );
    // decidable: L1 finite — check each word
    if let Finiteness::Finite(words) = finiteness(&g1) {
        let cnf2 = CnfGrammar::from_cfg(&g2);
        for w in words {
            if !cnf2.accepts(&w) {
                return Containment::NotContained(w);
            }
        }
        return Containment::Contained;
    }
    // decidable: both compile exactly to DFAs
    let a1 = approximate(&g1);
    let a2 = approximate(&g2);
    if a1.exact && a2.exact {
        let d1 = minimize(&a1.dfa());
        let d2 = minimize(&a2.dfa());
        // inclusion via difference emptiness, with a shortest witness
        return match d1.difference(&d2).find_accepted_word() {
            None => Containment::Contained,
            Some(w) => Containment::NotContained(w),
        };
    }
    // sound refutation: L1-words up to the bound not in L2
    let cnf2 = CnfGrammar::from_cfg(&g2);
    for w in words_up_to(&g1, search_len) {
        if !cnf2.accepts(&w) {
            return Containment::NotContained(w);
        }
    }
    // one-sided decidable case: envelope of g1 inside an exact g2
    if a2.exact {
        let d2 = minimize(&a2.dfa());
        let env1 = minimize(&a1.dfa());
        if equiv::included(&env1, &d2) {
            // L1 ⊆ R(H1) ⊆ L2
            return Containment::Contained;
        }
    }
    Containment::Unknown
}

/// Equivalence via two containments.
pub fn equivalent(h1: &ChainProgram, h2: &ChainProgram, search_len: usize) -> Containment {
    match contained(h1, h2, search_len) {
        Containment::Contained => contained(h2, h1, search_len),
        other => other,
    }
}


/// The Prop. 8.1 reduction object: containment of **uniform** chain
/// programs is interreducible with containment of *sentential-form
/// languages* (Blattner's undecidable problem). This helper builds both
/// sentential-form grammars over a shared extended alphabet and applies
/// the same decidable-fragments-then-bounded-search discipline as
/// [`contained`]. For uniform programs a discrepancy between sentential
/// forms is witnessed by an actual database (substitute the dedicated
/// EDBs), so a `NotContained` here refutes program containment.
pub fn sentential_contained(
    h1: &ChainProgram,
    h2: &ChainProgram,
    search_len: usize,
) -> Containment {
    use selprop_grammar::sentential::sentential_forms;
    let s1 = sentential_forms(&h1.grammar());
    let s2 = sentential_forms(&h2.grammar());
    assert_eq!(
        s1.alphabet, s2.alphabet,
        "sentential comparison requires equal EDBs and equally named IDBs"
    );
    // decidable fragments on the sentential-form grammars
    if let Finiteness::Finite(words) = finiteness(&s1) {
        let cnf2 = CnfGrammar::from_cfg(&s2);
        for w in words {
            if !cnf2.accepts(&w) {
                return Containment::NotContained(w);
            }
        }
        return Containment::Contained;
    }
    let a1 = approximate(&s1);
    let a2 = approximate(&s2);
    if a1.exact && a2.exact {
        let d1 = minimize(&a1.dfa());
        let d2 = minimize(&a2.dfa());
        return match d1.difference(&d2).find_accepted_word() {
            None => Containment::Contained,
            Some(w) => Containment::NotContained(w),
        };
    }
    let cnf2 = CnfGrammar::from_cfg(&s2);
    for w in words_up_to(&s1, search_len) {
        if !cnf2.accepts(&w) {
            return Containment::NotContained(w);
        }
    }
    if a2.exact {
        let env1 = minimize(&a1.dfa());
        let d2 = minimize(&a2.dfa());
        if equiv::included(&env1, &d2) {
            return Containment::Contained;
        }
    }
    Containment::Unknown
}

/// Whether the chain program is **uniform**: every IDB `p` has a
/// dedicated EDB `b_p` appearing in exactly one rule, `p(X, Y) :-
/// b_p(X, Y)`, and nowhere else.
pub fn is_uniform(chain: &ChainProgram) -> bool {
    let idbs = chain.program.idb_predicates();
    for &p in &idbs {
        // find candidate dedicated EDBs: bodies of unit rules for p
        let unit_edbs: Vec<_> = chain
            .program
            .rules
            .iter()
            .filter(|r| r.head.pred == p && r.body.len() == 1)
            .map(|r| r.body[0].pred)
            .filter(|q| !idbs.contains(q))
            .collect();
        let dedicated = unit_edbs.iter().find(|&&b| {
            // b appears in exactly one rule overall
            chain
                .program
                .rules
                .iter()
                .flat_map(|r| r.body.iter())
                .filter(|a| a.pred == b)
                .count()
                == 1
        });
        if dedicated.is_none() {
            return false;
        }
    }
    true
}

/// Uniformizes a chain program: adds a fresh dedicated EDB `u_p` and the
/// rule `p(X, Y) :- u_p(X, Y)` for every IDB lacking one. The result is
/// uniform and its language is the original's with the new terminals
/// adjoined (the Prop. 8.1 reduction shape).
pub fn uniformize(chain: &ChainProgram) -> ChainProgram {
    let mut program = chain.program.clone();
    let idbs = program.idb_predicates();
    let x = program.symbols.fresh_variable("Ux");
    let y = program.symbols.fresh_variable("Uy");
    for &p in &idbs {
        let name = format!("u_{}", program.symbols.pred_name(p));
        let b = program.symbols.fresh_predicate(&name);
        program.rules.push(selprop_datalog::ast::Rule::new(
            selprop_datalog::ast::Atom::new(
                p,
                vec![
                    selprop_datalog::ast::Term::Var(x),
                    selprop_datalog::ast::Term::Var(y),
                ],
            ),
            vec![selprop_datalog::ast::Atom::new(
                b,
                vec![
                    selprop_datalog::ast::Term::Var(x),
                    selprop_datalog::ast::Term::Var(y),
                ],
            )],
        ));
    }
    ChainProgram::from_program(program).expect("uniformization preserves chain form")
}

/// Empirical cross-check of a containment verdict on concrete data:
/// interns the same `(edb, from, to)` edges into both programs'
/// symbol spaces, evaluates both queries semi-naively, and returns a
/// counterexample answer of `H1` missing from `H2`'s answers (as
/// constant-name tuples), or `None` if the answer sets nest.
///
/// For chain programs with the same goal form, `L(H1) ⊆ L(H2)` implies
/// answer containment on every database, so a counterexample here
/// refutes language containment outright — a cheap sanity layer over
/// the symbolic [`contained`] now that evaluation runs on the columnar
/// engine.
pub fn empirical_counterexample(
    h1: &ChainProgram,
    h2: &ChainProgram,
    edges: &[(&str, &str, &str)],
) -> Option<Vec<String>> {
    use selprop_datalog::eval::{answer, Strategy};
    let run = |chain: &ChainProgram| -> Vec<Vec<String>> {
        let mut p = chain.program.clone();
        let mut db = selprop_datalog::Database::new();
        for &(edb, u, v) in edges {
            let pred = p.symbols.predicate(edb);
            let cu = p.symbols.constant(u);
            let cv = p.symbols.constant(v);
            db.insert(pred, vec![cu, cv]);
        }
        let (ans, _) = answer(&p, &db, Strategy::SemiNaive);
        ans.iter()
            .map(|t| t.iter().map(|&c| p.symbols.const_name(c).to_owned()).collect())
            .collect()
    };
    let sup: std::collections::HashSet<Vec<String>> = run(h2).into_iter().collect();
    run(h1).into_iter().find(|t| !sup.contains(t))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> ChainProgram {
        ChainProgram::parse(src).unwrap()
    }

    #[test]
    fn equivalent_regular_programs() {
        // Programs A and B of Example 1.1: both define par+.
        let a = parse(
            "?- anc(c, Y).\nanc(X, Y) :- par(X, Y).\nanc(X, Y) :- anc(X, Z), par(Z, Y).",
        );
        let b = parse(
            "?- anc(c, Y).\nanc(X, Y) :- par(X, Y).\nanc(X, Y) :- par(X, Z), anc(Z, Y).",
        );
        assert_eq!(equivalent(&a, &b, 6), Containment::Contained);
    }

    #[test]
    fn strict_containment_detected() {
        let small = parse("?- p(c, Y).\np(X, Y) :- par(X, Y).");
        let big = parse(
            "?- anc(c, Y).\nanc(X, Y) :- par(X, Y).\nanc(X, Y) :- anc(X, Z), par(Z, Y).",
        );
        assert_eq!(contained(&small, &big, 6), Containment::Contained);
        match contained(&big, &small, 6) {
            Containment::NotContained(w) => assert_eq!(w.len(), 2),
            other => panic!("expected counterexample, got {other:?}"),
        }
    }

    #[test]
    fn empirical_counterexample_matches_symbolic_verdict() {
        let small = parse("?- p(c, Y).\np(X, Y) :- par(X, Y).");
        let big = parse(
            "?- anc(c, Y).\nanc(X, Y) :- par(X, Y).\nanc(X, Y) :- anc(X, Z), par(Z, Y).",
        );
        let edges = [("par", "c", "a"), ("par", "a", "b"), ("par", "b", "d")];
        // small ⊆ big: no empirical counterexample either
        assert_eq!(empirical_counterexample(&small, &big, &edges), None);
        // big ⊄ small: anc(c, b) is a two-step answer small cannot produce
        let cex = empirical_counterexample(&big, &small, &edges).expect("refutation");
        assert!(cex == vec!["b".to_owned()] || cex == vec!["d".to_owned()]);
    }

    #[test]
    fn nonregular_vs_envelope() {
        // b1^n b2^n ⊆ b1+ b2+ — decidable one-sidedly via the envelope.
        let balanced = parse(
            "?- p(c, Y).\n\
             p(X, Y) :- b1(X, X1), b2(X1, Y).\n\
             p(X, Y) :- b1(X, X1), p(X1, X2), b2(X2, Y).",
        );
        let upper = parse(
            "?- q(c, Y).\n\
             q(X, Y) :- b1(X, X1), r(X1, Y).\n\
             q(X, Y) :- b1(X, X1), q(X1, Y).\n\
             r(X, Y) :- b2(X, Y).\n\
             r(X, Y) :- b2(X, X1), r(X1, Y).",
        );
        // note: alphabets must match (b1, b2 in the same order)
        assert_eq!(contained(&balanced, &upper, 8), Containment::Contained);
        // converse fails with a small witness (b1 b2 b2 ∈ upper \ balanced)
        match contained(&upper, &balanced, 8) {
            Containment::NotContained(w) => assert!(w.len() <= 3),
            other => panic!("expected counterexample, got {other:?}"),
        }
    }

    #[test]
    fn nonlinear_same_language_unknown_or_contained() {
        // Program C vs Program A: equivalent languages (par+), but C's
        // grammar is not exactly compilable — the honest outcome is
        // either Contained (via the envelope arm) or Unknown, never
        // NotContained.
        let a = parse(
            "?- anc(c, Y).\nanc(X, Y) :- par(X, Y).\nanc(X, Y) :- anc(X, Z), par(Z, Y).",
        );
        let c = parse(
            "?- anc(c, Y).\nanc(X, Y) :- par(X, Y).\nanc(X, Y) :- anc(X, Z), anc(Z, Y).",
        );
        assert_ne!(
            contained(&c, &a, 8),
            Containment::NotContained(vec![]),
            "placeholder shape check"
        );
        match contained(&c, &a, 8) {
            Containment::Contained | Containment::Unknown => {}
            Containment::NotContained(w) => {
                panic!("false counterexample {w:?} for equivalent programs")
            }
        }
        // A ⊆ C decidable? A exact, C not: refutation search + envelope —
        // here a1 exact but a2 (C) not exact, so Unknown is acceptable;
        // NotContained would be wrong.
        if let Containment::NotContained(w) = contained(&a, &c, 8) {
            panic!("false counterexample {w:?} for equivalent programs")
        }
    }

    #[test]
    fn uniformity() {
        let u = parse(
            "?- p(c, Y).\n\
             p(X, Y) :- bp(X, Y).\n\
             p(X, Y) :- p(X, Z), par(Z, Y).",
        );
        assert!(is_uniform(&u));
        let not_u = parse(
            "?- p(c, Y).\n\
             p(X, Y) :- par(X, Y).\n\
             p(X, Y) :- p(X, Z), par(Z, Y).",
        );
        assert!(!is_uniform(&not_u)); // par appears in two rules
        let made = uniformize(&not_u);
        assert!(is_uniform(&made));
        // uniformization adds exactly one rule per IDB
        assert_eq!(made.program.rules.len(), not_u.program.rules.len() + 1);
    }

    #[test]
    fn sentential_forms_distinguish_rule_shapes() {
        // Programs A and B define the same language par+, but their
        // *sentential forms* differ: A derives "@anc par", B derives
        // "par @anc" — exactly why Prop 8.1's reduction needs
        // uniformity/sentential forms rather than plain languages.
        let a = parse(
            "?- anc(c, Y).\nanc(X, Y) :- par(X, Y).\nanc(X, Y) :- anc(X, Z), par(Z, Y).",
        );
        let b = parse(
            "?- anc(c, Y).\nanc(X, Y) :- par(X, Y).\nanc(X, Y) :- par(X, Z), anc(Z, Y).",
        );
        // plain language containment holds both ways...
        assert_eq!(equivalent(&a, &b, 6), Containment::Contained);
        // ...but sentential-form containment fails in both directions
        match sentential_contained(&a, &b, 5) {
            Containment::NotContained(_) => {}
            other => panic!("A's forms ⊄ B's forms, got {other:?}"),
        }
        match sentential_contained(&b, &a, 5) {
            Containment::NotContained(_) => {}
            other => panic!("B's forms ⊄ A's forms, got {other:?}"),
        }
        // and reflexively it holds
        assert_ne!(
            sentential_contained(&a, &a, 5),
            Containment::Unknown,
            "self-containment should be certified or at least not refuted"
        );
        match sentential_contained(&a, &a, 5) {
            Containment::Contained => {}
            other => panic!("self containment, got {other:?}"),
        }
    }

    #[test]
    fn finite_cases_fully_decidable() {
        let f1 = parse("?- p(c, Y).\np(X, Y) :- a(X, Y).\np(X, Y) :- a(X, Z), b(Z, Y).");
        let f2 = parse(
            "?- q(c, Y).\nq(X, Y) :- a(X, Y).\nq(X, Y) :- a(X, Z), b(Z, Y).\nq(X, Y) :- b(X, Y).",
        );
        assert_eq!(contained(&f1, &f2, 4), Containment::Contained);
        match contained(&f2, &f1, 4) {
            Containment::NotContained(w) => assert_eq!(w.len(), 1),
            other => panic!("expected counterexample, got {other:?}"),
        }
    }
}
