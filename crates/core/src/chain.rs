//! Chain Datalog programs and their associated grammars (Section 2.1,
//! definition (1), and the Section 3 grammar construction).
//!
//! A **chain rule** has the form
//!
//! ```text
//! r(X, Y) :- r1(X, X1), r2(X1, X2), ..., rn(Xn-1, Y).     (n ≥ 1)
//! ```
//!
//! with all predicates binary and the variables distinct. A **chain
//! program** is a program of chain rules; its goal takes one of six
//! forms: `p(X, Y)`, `p(X, X)`, `p(c, Y)`, `p(X, c)`, `p(c, c1)`,
//! `p(c, c)`. The grammar `G(H)` replaces IDBs by nonterminals, EDBs by
//! terminals, rules by productions, and the goal predicate by the start
//! symbol; `L(H) = L(G(H))`.

use selprop_datalog::ast::{Atom, Pred, Program, Term, Var};
use selprop_grammar::cfg::{Cfg, Sym};

/// The six goal forms of Section 2.1 (the five selection forms plus the
/// unselected `p(X, Y)`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GoalForm {
    /// `p(X, Y)` — no selection.
    Free,
    /// `p(c, Y)` — constant in the first argument.
    BoundFirst(String),
    /// `p(X, c)` — constant in the second argument.
    BoundSecond(String),
    /// `p(c, c1)` — two (distinct or equal) constants; the paper's
    /// `p(c, c1)` and `p(c, c)` cases, distinguished by string equality.
    BoundBoth(String, String),
    /// `p(X, X)` — the diagonal selection.
    Diagonal,
}

impl GoalForm {
    /// Whether the goal mentions a constant (the undecidable side of
    /// Corollary 3.4).
    pub fn has_constant(&self) -> bool {
        matches!(
            self,
            GoalForm::BoundFirst(_) | GoalForm::BoundSecond(_) | GoalForm::BoundBoth(_, _)
        )
    }
}

/// A validated chain program.
#[derive(Clone, Debug)]
pub struct ChainProgram {
    /// The underlying Datalog program.
    pub program: Program,
    /// The classified goal form.
    pub goal_form: GoalForm,
}

impl ChainProgram {
    /// Parses and validates a chain program from the paper's surface
    /// syntax.
    pub fn parse(text: &str) -> Result<ChainProgram, String> {
        let program = selprop_datalog::parser::parse_program(text)?;
        ChainProgram::from_program(program)
    }

    /// Validates an existing program as a chain program and classifies
    /// its goal.
    pub fn from_program(program: Program) -> Result<ChainProgram, String> {
        for rule in &program.rules {
            validate_chain_rule(&program, rule)?;
        }
        let goal_form = classify_goal(&program)?;
        Ok(ChainProgram { program, goal_form })
    }

    /// The goal predicate.
    pub fn goal_pred(&self) -> Pred {
        self.program.goal.pred
    }

    /// The EDB predicates, in first-appearance order (the alphabet `Σ`).
    pub fn edbs(&self) -> Vec<Pred> {
        self.program.edb_predicates()
    }

    /// The grammar `G(H)` of Section 3. Terminals are EDB names,
    /// nonterminals IDB names, the start symbol is the goal predicate.
    pub fn grammar(&self) -> Cfg {
        let idbs = self.program.idb_predicates();
        let edbs = self.edbs();
        let alphabet = selprop_automata::Alphabet::from_names(
            edbs.iter().map(|&p| self.program.symbols.pred_name(p)),
        );
        // start must be the goal predicate: list it first
        let goal = self.goal_pred();
        let mut order: Vec<Pred> = vec![goal];
        order.extend(idbs.iter().copied().filter(|&p| p != goal));
        let mut cfg = Cfg::new(alphabet, self.program.symbols.pred_name(goal));
        for &p in &order[1..] {
            cfg.add_nonterminal(self.program.symbols.pred_name(p));
        }
        let nt_of = |p: Pred| -> selprop_grammar::NonTerminal {
            let i = order.iter().position(|&q| q == p).expect("idb");
            selprop_grammar::NonTerminal(i as u32)
        };
        for rule in &self.program.rules {
            let body = rule
                .body
                .iter()
                .map(|a| {
                    if idbs.contains(&a.pred) {
                        Sym::N(nt_of(a.pred))
                    } else {
                        let name = self.program.symbols.pred_name(a.pred);
                        Sym::T(cfg.alphabet.get(name).expect("edb interned"))
                    }
                })
                .collect();
            cfg.add_production(nt_of(rule.head.pred), body);
        }
        cfg
    }

    /// Words of `L(H)` up to a length bound (via the grammar).
    pub fn language_words(&self, max_len: usize) -> Vec<Vec<selprop_automata::Symbol>> {
        selprop_grammar::analysis::words_up_to(&self.grammar(), max_len)
    }

    /// Replaces the goal, revalidating the form (used to compare the same
    /// rules under different selections).
    pub fn with_goal(&self, goal: Atom) -> Result<ChainProgram, String> {
        let mut program = self.program.clone();
        program.goal = goal;
        ChainProgram::from_program(program)
    }
}

fn validate_chain_rule(
    program: &Program,
    rule: &selprop_datalog::ast::Rule,
) -> Result<(), String> {
    let render = || program.render_rule(rule);
    // head: two distinct variables
    let (hx, hy) = match rule.head.args.as_slice() {
        [Term::Var(x), Term::Var(y)] if x != y => (*x, *y),
        _ => {
            return Err(format!(
                "chain rule head must be p(X, Y) with distinct variables: {}",
                render()
            ))
        }
    };
    if rule.body.is_empty() {
        return Err(format!("chain rule body must be nonempty: {}", render()));
    }
    // body: binary atoms threading X -> X1 -> ... -> Y
    let mut expected: Var = hx;
    let mut seen: Vec<Var> = vec![hx];
    for (i, atom) in rule.body.iter().enumerate() {
        let (ax, ay) = match atom.args.as_slice() {
            [Term::Var(x), Term::Var(y)] => (*x, *y),
            _ => {
                return Err(format!(
                    "chain body atoms must be binary over variables: {}",
                    render()
                ))
            }
        };
        if ax != expected {
            return Err(format!(
                "chain variables must thread left to right: {}",
                render()
            ));
        }
        let last = i == rule.body.len() - 1;
        if last {
            if ay != hy {
                return Err(format!(
                    "last body atom must end at the head's second variable: {}",
                    render()
                ));
            }
        } else {
            if seen.contains(&ay) || ay == hy {
                return Err(format!("chain variables must be distinct: {}", render()));
            }
            seen.push(ay);
        }
        expected = ay;
    }
    Ok(())
}

fn classify_goal(program: &Program) -> Result<GoalForm, String> {
    let goal = &program.goal;
    if goal.arity() != 2 {
        return Err("chain program goals are binary".to_owned());
    }
    let name = |c: selprop_datalog::ast::Const| program.symbols.const_name(c).to_owned();
    Ok(match (goal.args[0], goal.args[1]) {
        (Term::Var(x), Term::Var(y)) if x == y => GoalForm::Diagonal,
        (Term::Var(_), Term::Var(_)) => GoalForm::Free,
        (Term::Const(c), Term::Var(_)) => GoalForm::BoundFirst(name(c)),
        (Term::Var(_), Term::Const(c)) => GoalForm::BoundSecond(name(c)),
        (Term::Const(c), Term::Const(d)) => GoalForm::BoundBoth(name(c), name(d)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use selprop_grammar::analysis::{finiteness, Finiteness};

    const PROGRAM_A: &str = "?- anc(john, Y).\n\
                             anc(X, Y) :- par(X, Y).\n\
                             anc(X, Y) :- anc(X, Z), par(Z, Y).";

    #[test]
    fn program_a_is_chain() {
        let c = ChainProgram::parse(PROGRAM_A).unwrap();
        assert_eq!(c.goal_form, GoalForm::BoundFirst("john".to_owned()));
        assert!(c.goal_form.has_constant());
    }

    #[test]
    fn goal_forms_classified() {
        let base = "p(X, Y) :- b(X, Y).\np(X, Y) :- p(X, Z), b(Z, Y).";
        let cases = [
            ("?- p(X, Y).", GoalForm::Free),
            ("?- p(X, X).", GoalForm::Diagonal),
            ("?- p(c, Y).", GoalForm::BoundFirst("c".into())),
            ("?- p(X, c).", GoalForm::BoundSecond("c".into())),
            ("?- p(c, d).", GoalForm::BoundBoth("c".into(), "d".into())),
            ("?- p(c, c).", GoalForm::BoundBoth("c".into(), "c".into())),
        ];
        for (goal, form) in cases {
            let c = ChainProgram::parse(&format!("{goal}\n{base}")).unwrap();
            assert_eq!(c.goal_form, form, "for {goal}");
        }
    }

    #[test]
    fn non_chain_rules_rejected() {
        // repeated variable in head
        assert!(ChainProgram::parse("?- p(X, X).\np(X, X) :- b(X, X).").is_err());
        // unary atom in body
        assert!(ChainProgram::parse("?- p(c, Y).\np(X, Y) :- u(X), b(X, Y).").is_err());
        // broken threading
        assert!(
            ChainProgram::parse("?- p(c, Y).\np(X, Y) :- b(X, Z), b(X, Y).").is_err()
        );
        // constants in body
        assert!(ChainProgram::parse("?- p(c, Y).\np(X, Y) :- b(X, c), b(c, Y).").is_err());
        // empty body (fact)
        assert!(ChainProgram::parse("?- p(c, Y).\np(a, b).").is_err());
        // non-binary goal predicate
        assert!(ChainProgram::parse("?- q(X).\nq(X) :- e(X, X).").is_err());
    }

    #[test]
    fn grammar_of_program_a() {
        let c = ChainProgram::parse(PROGRAM_A).unwrap();
        let g = c.grammar();
        assert_eq!(g.num_nonterminals(), 1);
        assert_eq!(g.productions.len(), 2);
        match finiteness(&g) {
            Finiteness::Infinite(_) => {}
            Finiteness::Finite(_) => panic!("ancestor language is infinite"),
        }
        // L(H) = par+
        let words = c.language_words(3);
        assert_eq!(words.len(), 3);
    }

    #[test]
    fn grammar_start_is_goal_pred() {
        // goal predicate is not the first rule's head
        let src = "?- q(c, Y).\n\
                   p(X, Y) :- b1(X, Y).\n\
                   q(X, Y) :- p(X, Z), b2(Z, Y).";
        let c = ChainProgram::parse(src).unwrap();
        let g = c.grammar();
        assert_eq!(g.name(g.start), "q");
        let words = c.language_words(2);
        assert_eq!(words.len(), 1); // b1 b2
        assert_eq!(words[0].len(), 2);
    }

    #[test]
    fn with_goal_reclassifies() {
        let c = ChainProgram::parse(PROGRAM_A).unwrap();
        let anc = c.goal_pred();
        let mut program = c.program.clone();
        let x = program.symbols.variable("X");
        let goal = Atom::new(anc, vec![Term::Var(x), Term::Var(x)]);
        let c2 = c.with_goal(goal).unwrap();
        assert_eq!(c2.goal_form, GoalForm::Diagonal);
        let _ = program;
    }

    #[test]
    fn multi_edb_chain() {
        let src = "?- p(c, Y).\n\
                   p(X, Y) :- b1(X, X1), b2(X1, Y).\n\
                   p(X, Y) :- b1(X, X1), p(X1, X2), b2(X2, Y).";
        let c = ChainProgram::parse(src).unwrap();
        let g = c.grammar();
        assert_eq!(g.alphabet.len(), 2);
        // L = b1^n b2^n
        let words = c.language_words(4);
        assert_eq!(words.len(), 2);
    }
}
