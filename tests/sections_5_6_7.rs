//! Integration tests spanning Sections 5 (WS1S), 6 (MGS/symmetry) and
//! 7 (magic sets as quotients).

use selprop_automata::equiv::equivalent;
use selprop_automata::regex::Regex;
use selprop_core::chain::ChainProgram;
use selprop_core::magic_chain;
use selprop_core::workload;
use selprop_datalog::parser::parse_program;
use selprop_mgs::logic::{cyclic_sigma, disconnected_sigma, emso_check};
use selprop_mgs::structure::FiniteStructure;
use selprop_mgs::symmetry::{
    cycle_colors_uniform, distinguishes, monadic_probe_programs, program_cycle,
};
use selprop_ws1s::encode::{encode_monadic_program, extract_language};

// ───────────────────────── Section 5 ─────────────────────────

#[test]
fn lemma_5_1_pipeline_on_handwritten_monadic_programs() {
    // Each monadic program defines a regular language on labeled lines —
    // mechanized Lemma 5.1/5.3 with explicit expected languages.
    let cases = [
        (
            "?- p(Y).\np(Y) :- b(c, Y).\np(Y) :- p(Z), b(Z, Y).",
            "c",
            "b b*",
        ),
        (
            "?- q2(Y).\nq1(Y) :- b1(c, Y).\nq1(Y) :- q2(Z), b1(Z, Y).\nq2(Y) :- q1(Z), b2(Z, Y).",
            "c",
            "b1 b2 (b1 b2)*",
        ),
        (
            // only length-≥2 b-paths (two seed steps)
            "?- p(Y).\nstart(Y) :- b(c, Y).\np(Y) :- start(Z), b(Z, Y).\np(Y) :- p(Z), b(Z, Y).",
            "c",
            "b b b*",
        ),
    ];
    for (src, origin, expected) in cases {
        let h = parse_program(src).unwrap();
        assert!(h.is_monadic());
        let enc = encode_monadic_program(&h, origin).unwrap();
        let lang = extract_language(&enc);
        let mut al = enc.alphabet.clone();
        let want = Regex::parse(expected, &mut al).unwrap().to_dfa(&al);
        assert!(
            equivalent(&lang, &want),
            "Lemma 5.1 language mismatch for {src}: expected {expected}"
        );
    }
}

// ───────────────────────── Section 6 ─────────────────────────

#[test]
fn mgs_examples_2_2() {
    // 2.2.1 disconnectedness
    let connected = FiniteStructure::path(5, "b").symmetric_closure("b");
    let split = FiniteStructure::path(2, "b")
        .disjoint_union(&FiniteStructure::path(3, "b"))
        .symmetric_closure("b");
    assert!(!emso_check(&connected, &["w"], &disconnected_sigma()));
    assert!(emso_check(&split, &["w"], &disconnected_sigma()));
    // 2.2.3 cyclicity
    assert!(emso_check(&FiniteStructure::cycle(5, "b"), &["w"], &cyclic_sigma()));
    assert!(!emso_check(&FiniteStructure::path(5, "b"), &["w"], &cyclic_sigma()));
}

#[test]
fn section_6_symmetry_and_blindness() {
    // monadic probes: uniform colors on cycles, blind to P vs P ⊎ C
    let path = FiniteStructure::path(7, "b");
    let with_cycle = path.disjoint_union(&FiniteStructure::cycle(4, "b"));
    for probe in monadic_probe_programs() {
        assert!(cycle_colors_uniform(&probe, 6));
        assert!(!distinguishes(&probe, &path, &with_cycle));
    }
    // the binary CYCLE program distinguishes (via a 0-ary wrapper)
    let cycle_boolean = parse_program(
        "?- yes.\nyes :- p(X, X).\np(X, Y) :- b(X, Y).\np(X, Y) :- p(X, Z), b(Z, Y).",
    )
    .unwrap();
    assert!(distinguishes(&cycle_boolean, &path, &with_cycle));
    let _ = program_cycle();
}

#[test]
fn cycle_program_answers_exactly_cycle_nodes() {
    let p = program_cycle();
    let mut p2 = p.clone();
    let s = FiniteStructure::path(4, "b")
        .disjoint_union(&FiniteStructure::cycle(3, "b"))
        .disjoint_union(&FiniteStructure::cycle(2, "b"));
    let (db, ids) = s.to_database(&mut p2.symbols);
    let (ans, _) = selprop_datalog::eval::answer(
        &p2,
        &db,
        selprop_datalog::eval::Strategy::SemiNaive,
    );
    assert_eq!(ans.len(), 5); // 3-cycle + 2-cycle nodes
    for id in &ids[4..9] {
        assert!(ans.contains(&[*id]));
    }
}

// ───────────────────────── Section 7 ─────────────────────────

#[test]
fn section_7_quotients_and_pruning() {
    let mut chain = ChainProgram::parse(
        "?- p(c, Y).\n\
         p(X, Y) :- b1(X, X1), b2(X1, Y).\n\
         p(X, Y) :- b1(X, X1), p(X1, Y1), b2(Y1, Y).",
    )
    .unwrap();
    let analysis = magic_chain::analyze(&chain).unwrap();
    let al = chain.grammar().alphabet.clone();
    let mut al2 = al.clone();
    let b1_star = Regex::parse("b1*", &mut al2).unwrap().to_dfa(&al2);
    for rq in &analysis.rules {
        assert!(equivalent(&rq.envelope_quotient, &b1_star));
    }
    // pruning grows with noise
    let db_small = workload::layered_b1_b2(&mut chain.program, "c", 6, 5);
    let (o1, m1) = magic_chain::work_comparison(&chain, &db_small).unwrap();
    let db_large = workload::layered_b1_b2(&mut chain.program, "c", 6, 200);
    let (o2, m2) = magic_chain::work_comparison(&chain, &db_large).unwrap();
    let ratio_small = o1.tuples_derived as f64 / m1.tuples_derived.max(1) as f64;
    let ratio_large = o2.tuples_derived as f64 / m2.tuples_derived.max(1) as f64;
    assert!(
        ratio_large > ratio_small,
        "pruning factor should grow with irrelevant data: {ratio_small:.2} vs {ratio_large:.2}"
    );
}

#[test]
fn cycle_program_agrees_with_fixpoint_negation_on_random_graphs() {
    // three independent cyclicity deciders must agree: the binary CYCLE
    // chain program (Section 6), the Example 6.3 monadic fixpoint with
    // negation, and the ∃MSO sentence of Example 2.2.3.
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use selprop_mgs::fixpoint::has_cycle_via_fixpoint;
    let cycle_boolean = parse_program(
        "?- yes.\nyes :- p(X, X).\np(X, Y) :- b(X, Y).\np(X, Y) :- p(X, Z), b(Z, Y).",
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(2024);
    for _ in 0..20 {
        let n = rng.gen_range(2..6usize);
        let m = rng.gen_range(0..9usize);
        let mut s = FiniteStructure::new(n);
        for _ in 0..m {
            s.add_edge("b", rng.gen_range(0..n), rng.gen_range(0..n));
        }
        let via_fixpoint = has_cycle_via_fixpoint(&s);
        let via_emso = emso_check(&s, &["w"], &selprop_mgs::logic::cyclic_sigma());
        let mut p = cycle_boolean.clone();
        let (db, _) = s.to_database(&mut p.symbols);
        let (ans, _) = selprop_datalog::eval::answer(
            &p,
            &db,
            selprop_datalog::eval::Strategy::SemiNaive,
        );
        let via_datalog = !ans.is_empty();
        assert_eq!(via_fixpoint, via_emso, "fixpoint vs EMSO on {s:?}");
        assert_eq!(via_fixpoint, via_datalog, "fixpoint vs CYCLE on {s:?}");
    }
}

#[test]
fn magic_equals_quotient_reachability_on_random_graphs() {
    let chain = ChainProgram::parse(
        "?- p(c, Y).\n\
         p(X, Y) :- b1(X, X1), b2(X1, Y).\n\
         p(X, Y) :- b1(X, X1), p(X1, Y1), b2(Y1, Y).",
    )
    .unwrap();
    let al = chain.grammar().alphabet.clone();
    let mut al2 = al;
    let b1_star = Regex::parse("b1*", &mut al2).unwrap().to_dfa(&al2);
    for seed in 0..5u64 {
        let mut c = chain.clone();
        let db = workload::random_labeled_digraph(
            &mut c.program,
            &["b1", "b2"],
            "c",
            14,
            35,
            seed,
        );
        let (marked, reachable) =
            magic_chain::magic_extension_vs_language(&c, &db, &b1_star).unwrap();
        assert_eq!(marked, reachable, "seed {seed}");
    }
}
