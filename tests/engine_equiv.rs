//! Cross-engine equivalence: the columnar storage engine
//! (`selprop_datalog::eval`) against the preserved tuple-at-a-time
//! reference evaluator (`selprop_datalog::reference`), over the paper's
//! program gallery and randomized workloads.
//!
//! The contract is strict: identical sorted IDB models for **both**
//! strategies, and — because EXPERIMENTS.md records work counts, not
//! wall-clock — identical [`EvalStats`] **bit-for-bit** (iterations,
//! rule firings, tuples derived, join probes).

use proptest::prelude::*;
use selprop_core::gallery::gallery;
use selprop_core::workload;
use selprop_datalog::db::Tuple;
use selprop_datalog::eval::{self, EvalStats, Strategy};
use selprop_datalog::reference;
use selprop_datalog::{CompactionPolicy, Database, Materialization, Pred, Program, Term};

/// The goal's bound constant if any (workload root), else "c".
fn root_of(program: &Program) -> String {
    program
        .goal
        .args
        .iter()
        .find_map(|t| match t {
            Term::Const(c) => Some(program.symbols.const_name(*c).to_owned()),
            Term::Var(_) => None,
        })
        .unwrap_or_else(|| "c".to_owned())
}

/// EDB predicate names of a program, in first-occurrence order.
fn edb_names(program: &Program) -> Vec<String> {
    program
        .edb_predicates()
        .iter()
        .map(|&p| program.symbols.pred_name(p).to_owned())
        .collect()
}

/// Builds one of the workload-generator shapes, selected by `shape`.
fn build_db(program: &mut Program, shape: u8, n: usize, seed: u64) -> Database {
    let root = root_of(program);
    let names = edb_names(program);
    let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
    match shape % 4 {
        0 => workload::random_labeled_digraph(program, &name_refs, &root, n, 2 * n, seed),
        1 => workload::random_forest(program, name_refs[0], &root, n.max(2), seed),
        2 => workload::cycles(program, name_refs[0], &[3, n.max(1), n / 2 + 1]),
        _ => workload::wide(program, name_refs[0], &root, n / 2, 3, n / 3 + 1),
    }
}

/// Sorted `(pred, sorted tuples)` view of the IDB model, keyed by
/// predicate id for a stable comparison.
fn model_of(result: &eval::EvalResult) -> Vec<(u32, Vec<Vec<selprop_datalog::Const>>)> {
    let mut v: Vec<_> = result.idb.iter().map(|(p, r)| (p.0, r.sorted())).collect();
    v.sort();
    v
}

fn assert_engines_agree(program: &Program, db: &Database) -> (EvalStats, EvalStats) {
    let new_sn = eval::evaluate(program, db, Strategy::SemiNaive);
    let old_sn = reference::evaluate(program, db, Strategy::SemiNaive);
    assert_eq!(
        new_sn.stats, old_sn.stats,
        "semi-naive EvalStats must be bit-for-bit identical"
    );
    assert_eq!(model_of(&new_sn), model_of(&old_sn), "semi-naive IDB model");

    let new_nv = eval::evaluate(program, db, Strategy::Naive);
    let old_nv = reference::evaluate(program, db, Strategy::Naive);
    assert_eq!(
        new_nv.stats, old_nv.stats,
        "naive EvalStats must be bit-for-bit identical"
    );
    assert_eq!(model_of(&new_nv), model_of(&old_nv), "naive IDB model");

    // both strategies compute the same minimum model
    assert_eq!(model_of(&new_sn), model_of(&new_nv), "naive vs semi-naive model");

    // the allocation-free answer path agrees with apply_goal over the
    // materialized model
    let (fast_ans, fast_stats) = eval::answer(program, db, Strategy::SemiNaive);
    let (ref_ans, _) = reference::answer(program, db, Strategy::SemiNaive);
    assert_eq!(fast_ans.sorted(), ref_ans.sorted(), "goal answers");
    assert_eq!(fast_stats, new_sn.stats);

    // the sharded parallel engine: same minimum model, and EvalStats
    // bit-for-bit identical to the sequential (and hence the reference)
    // engine, for degenerate (1), even (2), and odd (3) thread counts
    for threads in [1usize, 2, 3] {
        let par = eval::evaluate(program, db, Strategy::SemiNaiveParallel { threads });
        assert_eq!(
            par.stats, new_sn.stats,
            "parallel({threads}) EvalStats must be bit-for-bit identical"
        );
        assert_eq!(
            model_of(&par),
            model_of(&new_sn),
            "parallel({threads}) IDB model"
        );
    }

    // explicit shard counts, including heavily oversharded and
    // shards ≠ k×threads configurations: the (rule, delta, shard)
    // merge order keeps counters and model shard-count independent
    for (threads, shards) in [(2usize, 7usize), (3, 12), (1, 5)] {
        let par = eval::evaluate(program, db, Strategy::SemiNaiveSharded { threads, shards });
        assert_eq!(
            par.stats, new_sn.stats,
            "sharded({threads}x{shards}) EvalStats must be bit-for-bit identical"
        );
        assert_eq!(
            model_of(&par),
            model_of(&new_sn),
            "sharded({threads}x{shards}) IDB model"
        );
    }
    let (par_ans, par_stats) =
        eval::answer(program, db, Strategy::SemiNaiveParallel { threads: 2 });
    assert_eq!(par_ans.sorted(), fast_ans.sorted(), "parallel goal answers");
    assert_eq!(par_stats, fast_stats);

    (new_sn.stats, new_nv.stats)
}

/// The provenance contract, asserted on one `(program, db)` pair:
///
/// 1. recording justifications changes no counter and no model row;
/// 2. every recorded justification is a genuine rule instantiation whose
///    chains bottom out in EDB rows ([`Provenance::check`]);
/// 3. the naive spec (`reference::Provenance`) derives the same facts,
///    and its own justifications pass the mirror checker;
/// 4. justifications are **bit-for-bit identical** across thread counts
///    {1, 2, 4} and oversharded configurations.
///
/// [`Provenance::check`]: selprop_datalog::Provenance::check
fn assert_provenance_contract(program: &Program, db: &Database) {
    let plain = eval::evaluate(program, db, Strategy::SemiNaive);
    let seq = eval::evaluate_with_provenance(program, db, Strategy::SemiNaive);
    assert_eq!(
        seq.stats, plain.stats,
        "recording justifications must not change the work counters"
    );
    seq.provenance
        .check(program)
        .expect("engine justifications are valid rule instantiations over EDB leaves");

    // the recorded derived set IS the IDB model, and matches the naive
    // executable specification
    let spec = reference::Provenance::compute(program, db);
    spec.check(program).expect("spec justifications are valid");
    let mut engine_facts: Vec<_> = seq.provenance.derived().collect();
    engine_facts.sort();
    engine_facts.dedup();
    let mut spec_facts: Vec<_> = spec.derived().cloned().collect();
    spec_facts.sort();
    assert_eq!(engine_facts, spec_facts, "derived sets agree with the spec");
    assert_eq!(
        seq.provenance.num_derived() as u64,
        plain.stats.tuples_derived,
        "one justification per derived tuple"
    );

    // thread- and shard-count independence, bit-for-bit (row ids
    // included — Provenance equality compares the full row stores)
    for strategy in [
        Strategy::SemiNaiveParallel { threads: 1 },
        Strategy::SemiNaiveParallel { threads: 2 },
        Strategy::SemiNaiveParallel { threads: 4 },
        Strategy::SemiNaiveSharded { threads: 2, shards: 5 },
        Strategy::SemiNaiveSharded { threads: 3, shards: 12 },
    ] {
        let par = eval::evaluate_with_provenance(program, db, strategy);
        assert_eq!(par.stats, seq.stats, "{strategy:?} counters");
        assert_eq!(
            par.provenance, seq.provenance,
            "{strategy:?}: justifications must be identical at every thread/shard count"
        );
    }

    // the naive strategy records its own (round-structured) first-found
    // choice; it must still be valid
    let naive = eval::evaluate_with_provenance(program, db, Strategy::Naive);
    naive
        .provenance
        .check(program)
        .expect("naive-strategy justifications are valid");
}

/// Sorted `(pred, sorted tuples)` view of a Database.
fn sorted_db(db: &Database) -> Vec<(Pred, Vec<Tuple>)> {
    db.sorted_models()
}

/// The update-sequence contract: a [`Materialization`] driven through an
/// interleaved insert/retract/query sequence must, after **every** op,
/// equal a naive from-scratch re-evaluation (the reference engine) of
/// the mirrored database — bit-for-bit relation equality on the IDB
/// model, the stored EDB, and the goal answer — and its recorded
/// justifications must stay valid.
fn assert_update_sequence_matches_reference(
    program: &Program,
    db0: &Database,
    pool: &Database,
    strategy: Strategy,
) {
    let mut m = Materialization::from_database(program, db0, strategy);
    let mut mirror = db0.clone();

    // The pool's facts, grouped per predicate in a deterministic order,
    // drive the update stream.
    let mut pool_facts: Vec<(Pred, Vec<Tuple>)> =
        pool.iter().map(|(p, r)| (p, r.sorted())).collect();
    pool_facts.sort_by_key(|(p, _)| p.0);

    let check = |m: &Materialization, mirror: &Database| {
        let spec = reference::evaluate(program, mirror, Strategy::SemiNaive);
        assert_eq!(
            sorted_db(&m.idb_database()),
            sorted_db(&spec.idb),
            "IDB model must equal the from-scratch spec"
        );
        let (spec_ans, _) = reference::answer(program, mirror, Strategy::SemiNaive);
        assert_eq!(m.answer().sorted(), spec_ans.sorted(), "goal answers");
    };

    // Op 1: insert the first half of each pool relation.
    for (pred, tuples) in &pool_facts {
        let half = &tuples[..tuples.len() / 2];
        let novel = half.iter().filter(|t| !mirror.relation(*pred).is_some_and(|r| r.contains(t))).count();
        assert_eq!(m.insert_facts(*pred, half), novel);
        for t in half {
            mirror.insert(*pred, t.clone());
        }
    }
    check(&m, &mirror);

    // Op 2: retract every third fact currently in the mirror (originals
    // and freshly inserted facts alike).
    let mut retractions: Vec<(Pred, Vec<Tuple>)> = Vec::new();
    {
        let mut all: Vec<(Pred, Vec<Tuple>)> =
            mirror.iter().map(|(p, r)| (p, r.sorted())).collect();
        all.sort_by_key(|(p, _)| p.0);
        for (pred, tuples) in all {
            let victims: Vec<Tuple> = tuples.iter().step_by(3).cloned().collect();
            if !victims.is_empty() {
                retractions.push((pred, victims));
            }
        }
    }
    for (pred, victims) in &retractions {
        assert_eq!(m.retract_facts(*pred, victims), victims.len());
        for t in victims {
            assert!(mirror.remove(*pred, t));
        }
    }
    check(&m, &mirror);

    // Op 3: insert the second half of the pool (plus re-insert one
    // retracted victim, exercising resurrection at a fresh row id).
    for (pred, tuples) in &pool_facts {
        let rest = &tuples[tuples.len() / 2..];
        m.insert_facts(*pred, rest);
        for t in rest {
            mirror.insert(*pred, t.clone());
        }
    }
    if let Some((pred, victims)) = retractions.first() {
        m.insert_facts(*pred, &victims[..1]);
        mirror.insert(*pred, victims[0].clone());
    }
    check(&m, &mirror);

    // The justifications recorded across the whole sequence are genuine
    // rule instantiations over live rows, bottoming out in EDB leaves.
    m.provenance()
        .check(program)
        .expect("justifications stay valid across updates");
}

/// The compaction contract: interleaved churn with an explicit
/// compaction and a policy-triggered one must leave the store
/// indistinguishable — after **every** compaction — from a from-scratch
/// reference evaluation of the mirrored database, with valid recorded
/// justifications throughout, and the snapshot codec must round-trip
/// the store bit-for-bit at the end.
fn assert_churn_compact_churn_matches_reference(
    program: &Program,
    db0: &Database,
    pool: &Database,
    strategy: Strategy,
) {
    let mut m = Materialization::from_database(program, db0, strategy);
    m.set_compaction_policy(None); // phase 1 compacts explicitly
    let mut mirror = db0.clone();

    let check = |m: &Materialization, mirror: &Database| {
        let spec = reference::evaluate(program, mirror, Strategy::SemiNaive);
        assert_eq!(
            sorted_db(&m.idb_database()),
            sorted_db(&spec.idb),
            "IDB model must equal the from-scratch spec"
        );
        let (spec_ans, _) = reference::answer(program, mirror, Strategy::SemiNaive);
        assert_eq!(m.answer().sorted(), spec_ans.sorted(), "goal answers");
        m.provenance()
            .check(program)
            .expect("justifications stay valid across compactions");
    };

    // Churn 1: add the whole pool, then retract every second fact.
    let mut pool_facts: Vec<(Pred, Vec<Tuple>)> =
        pool.iter().map(|(p, r)| (p, r.sorted())).collect();
    pool_facts.sort_by_key(|(p, _)| p.0);
    for (pred, tuples) in &pool_facts {
        m.insert_facts(*pred, tuples);
        for t in tuples {
            mirror.insert(*pred, t.clone());
        }
    }
    let mut all: Vec<(Pred, Vec<Tuple>)> = mirror.iter().map(|(p, r)| (p, r.sorted())).collect();
    all.sort_by_key(|(p, _)| p.0);
    let mut churned = 0usize;
    for (pred, tuples) in &all {
        let victims: Vec<Tuple> = tuples.iter().step_by(2).cloned().collect();
        churned += m.retract_facts(*pred, &victims);
        for t in &victims {
            mirror.remove(*pred, t);
        }
    }
    check(&m, &mirror);

    // Explicit compaction: reclaims every tombstone, drops no live row,
    // changes nothing observable.
    let before = m.mem_stats();
    m.compact();
    let after = m.mem_stats();
    assert_eq!(after.live_rows, after.total_rows, "no tombstones survive a compaction");
    assert_eq!(after.live_rows, before.live_rows, "no live row is lost");
    check(&m, &mirror);

    // Churn 2 over the remapped store: resurrect the victims, then let
    // an aggressive policy trigger the second compaction on its own.
    m.set_compaction_policy(Some(CompactionPolicy {
        min_dead_rows: 1,
        dead_percent: 1,
    }));
    for (pred, tuples) in &all {
        let victims: Vec<Tuple> = tuples.iter().step_by(2).cloned().collect();
        m.insert_facts(*pred, &victims);
        for t in &victims {
            mirror.insert(*pred, t.clone());
        }
    }
    let compactions_before = m.compactions();
    let mut churned2 = 0usize;
    for (pred, tuples) in &all {
        let victims: Vec<Tuple> = tuples.iter().skip(1).step_by(2).cloned().collect();
        churned2 += m.retract_facts(*pred, &victims);
        for t in &victims {
            mirror.remove(*pred, t);
        }
    }
    if churned2 > 0 {
        assert!(
            m.compactions() > compactions_before,
            "the policy must have compacted during churn 2"
        );
        let stats = m.mem_stats();
        assert_eq!(stats.live_rows, stats.total_rows, "policy compaction reclaimed all");
    }
    check(&m, &mirror);

    // Updates keep working over the twice-compacted store.
    if let Some((pred, tuples)) = all.first() {
        let back: Vec<Tuple> = tuples.iter().skip(1).step_by(2).cloned().collect();
        m.insert_facts(*pred, &back);
        for t in &back {
            mirror.insert(*pred, t.clone());
        }
        check(&m, &mirror);
    }
    let _ = churned;

    // And the snapshot codec round-trips the final state bit-for-bit.
    let bytes = m.to_bytes();
    let m2 = Materialization::from_bytes(&bytes).expect("self-produced snapshot restores");
    assert_eq!(m2.to_bytes(), bytes, "snapshot round-trip is bit-for-bit");
    assert_eq!(sorted_db(&m2.database()), sorted_db(&m.database()));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn storage_engine_matches_reference_on_gallery(
        which in 0usize..10,
        shape in 0u8..4,
        n in 3usize..14,
        seed in 0u64..10_000,
    ) {
        let entries = gallery();
        let entry = &entries[which % entries.len()];
        let mut program = entry.chain().program;
        let db = build_db(&mut program, shape, n, seed);
        let (sn, nv) = assert_engines_agree(&program, &db);
        // sanity: the work proxy is consistent
        prop_assert!(sn.work() <= nv.work() || sn.iterations <= nv.iterations,
            "{}: semi-naive should not dominate naive in both measures", entry.name);
    }

    #[test]
    fn storage_engine_matches_reference_on_magic_programs(
        which in 0usize..10,
        n in 3usize..10,
        seed in 0u64..10_000,
    ) {
        // Magic-transformed programs stress 0-ary magic predicates,
        // empty-body seed rules, and constants in rule bodies.
        let entries = gallery();
        let entry = &entries[which % entries.len()];
        let original = entry.chain().program;
        let Ok(magic) = selprop_datalog::magic::magic_transform(&original) else {
            return Ok(()); // diagonal goals reject magic; nothing to test
        };
        let mut program = magic.program;
        let db = build_db(&mut program, 0, n, seed);
        assert_engines_agree(&program, &db);
    }

    #[test]
    fn provenance_contract_on_gallery(
        which in 0usize..10,
        shape in 0u8..4,
        n in 3usize..10,
        seed in 0u64..10_000,
    ) {
        let entries = gallery();
        let entry = &entries[which % entries.len()];
        let mut program = entry.chain().program;
        let db = build_db(&mut program, shape, n, seed);
        assert_provenance_contract(&program, &db);
    }

    #[test]
    fn provenance_contract_on_magic_programs(
        which in 0usize..10,
        n in 3usize..8,
        seed in 0u64..10_000,
    ) {
        // Magic-transformed programs stress 0-ary magic predicates,
        // empty-body seed rules, and constants in rule bodies — all of
        // which must still record valid justifications.
        let entries = gallery();
        let entry = &entries[which % entries.len()];
        let original = entry.chain().program;
        let Ok(magic) = selprop_datalog::magic::magic_transform(&original) else {
            return Ok(()); // diagonal goals reject magic; nothing to test
        };
        let mut program = magic.program;
        let db = build_db(&mut program, 0, n, seed);
        assert_provenance_contract(&program, &db);
    }

    #[test]
    fn incremental_updates_match_from_scratch_on_gallery(
        which in 0usize..10,
        shape in 0u8..4,
        n in 3usize..10,
        seed in 0u64..10_000,
        strat in 0usize..6,
    ) {
        // Random interleaved insert/retract/query sequences against the
        // from-scratch reference, across the strategy family and
        // threads ∈ {1, 2, 4}.
        let strategy = [
            Strategy::SemiNaive,
            Strategy::Naive,
            Strategy::SemiNaiveParallel { threads: 1 },
            Strategy::SemiNaiveParallel { threads: 2 },
            Strategy::SemiNaiveParallel { threads: 4 },
            Strategy::SemiNaiveSharded { threads: 2, shards: 5 },
        ][strat];
        let entries = gallery();
        let entry = &entries[which % entries.len()];
        let mut program = entry.chain().program;
        let db0 = build_db(&mut program, shape, n, seed);
        // A second workload over the same predicates = the update pool.
        let pool = build_db(&mut program, shape.wrapping_add(1), n, seed ^ 0x9e37);
        assert_update_sequence_matches_reference(&program, &db0, &pool, strategy);
    }

    #[test]
    fn incremental_updates_match_from_scratch_on_magic_programs(
        which in 0usize..10,
        n in 3usize..8,
        seed in 0u64..10_000,
        strat in 0usize..3,
    ) {
        // Magic-transformed programs stress 0-ary magic predicates,
        // empty-body seed rules, and constants in rule bodies — the
        // update machinery must handle all of them.
        let strategy = [
            Strategy::SemiNaive,
            Strategy::SemiNaiveParallel { threads: 2 },
            Strategy::SemiNaiveParallel { threads: 4 },
        ][strat];
        let entries = gallery();
        let entry = &entries[which % entries.len()];
        let original = entry.chain().program;
        let Ok(magic) = selprop_datalog::magic::magic_transform(&original) else {
            return Ok(()); // diagonal goals reject magic; nothing to test
        };
        let mut program = magic.program;
        let db0 = build_db(&mut program, 0, n, seed);
        let pool = build_db(&mut program, 0, n, seed ^ 0x517c);
        assert_update_sequence_matches_reference(&program, &db0, &pool, strategy);
    }

    #[test]
    fn insert_then_retract_roundtrip_restores_the_store(
        which in 0usize..10,
        shape in 0u8..4,
        n in 3usize..10,
        seed in 0u64..10_000,
        threads in 1usize..4,
    ) {
        let entries = gallery();
        let entry = &entries[which % entries.len()];
        let mut program = entry.chain().program;
        let db0 = build_db(&mut program, shape, n, seed);
        let pool = build_db(&mut program, shape.wrapping_add(2), n, seed ^ 0x2b);
        let mut m = Materialization::from_database(
            &program,
            &db0,
            Strategy::SemiNaiveParallel { threads },
        );
        let snapshot = sorted_db(&m.database());
        // Insert only facts genuinely absent from the store, so the
        // retraction of exactly those facts must restore it.
        let mut inserted: Vec<(Pred, Vec<Tuple>)> = Vec::new();
        for (pred, rel) in pool.iter() {
            let novel: Vec<Tuple> = rel
                .sorted()
                .into_iter()
                .filter(|t| !db0.relation(pred).is_some_and(|r| r.contains(t)))
                .collect();
            if !novel.is_empty() {
                m.insert_facts(pred, &novel);
                inserted.push((pred, novel));
            }
        }
        for (pred, novel) in &inserted {
            prop_assert_eq!(m.retract_facts(*pred, novel), novel.len());
        }
        prop_assert_eq!(
            sorted_db(&m.database()),
            snapshot,
            "insert-then-retract must restore the pre-insert store bit-for-bit"
        );
    }

    #[test]
    fn churn_compact_churn_matches_from_scratch(
        which in 0usize..10,
        shape in 0u8..4,
        n in 3usize..10,
        seed in 0u64..10_000,
        strat in 0usize..5,
    ) {
        // Random churn → compact → churn sequences against the
        // from-scratch reference, across the strategy family and
        // threads ∈ {1, 2, 4}.
        let strategy = [
            Strategy::SemiNaive,
            Strategy::Naive,
            Strategy::SemiNaiveParallel { threads: 1 },
            Strategy::SemiNaiveParallel { threads: 2 },
            Strategy::SemiNaiveParallel { threads: 4 },
        ][strat];
        let entries = gallery();
        let entry = &entries[which % entries.len()];
        let mut program = entry.chain().program;
        let db0 = build_db(&mut program, shape, n, seed);
        let pool = build_db(&mut program, shape.wrapping_add(3), n, seed ^ 0x71f3);
        assert_churn_compact_churn_matches_reference(&program, &db0, &pool, strategy);
    }

    #[test]
    fn convergence_profile_is_stage_exact(
        shape in 0u8..4,
        n in 3usize..12,
        seed in 0u64..10_000,
    ) {
        // The watermark profile must sum to the derived-tuple count and
        // have exactly iterations-1 productive stages.
        let entries = gallery();
        let entry = &entries[0]; // program A: unbounded, several stages
        let mut program = entry.chain().program;
        let db = build_db(&mut program, shape, n, seed);
        let profile = selprop_datalog::derivation::ConvergenceProfile::measure(&program, &db);
        let result = eval::evaluate(&program, &db, Strategy::SemiNaive);
        let total: u64 = profile.new_facts.iter().sum();
        prop_assert_eq!(total, result.stats.tuples_derived);
        prop_assert_eq!(profile.iterations(), result.stats.iterations - 1);
        prop_assert!(profile.new_facts.iter().all(|&k| k > 0));
        // thread count flows through measure_with; stage deltas must not
        // depend on it
        let par = selprop_datalog::derivation::ConvergenceProfile::measure_with(
            &program,
            &db,
            Strategy::SemiNaiveParallel { threads: 2 },
        );
        prop_assert_eq!(profile, par);
    }
}
