//! Example 1.1 end to end: the four ancestor programs are semantically
//! equivalent; Program D (monadic) does asymptotically less work; the
//! magic transformation brings A and B close to D but helps C much less.

use selprop_core::workload;
use selprop_datalog::db::Database;
use selprop_datalog::eval::{answer, EvalStats, Strategy};
use selprop_datalog::magic::magic_transform;
use selprop_datalog::parser::parse_program;
use selprop_datalog::Program;

const A: &str = "?- anc(john, Y).\nanc(X, Y) :- par(X, Y).\nanc(X, Y) :- anc(X, Z), par(Z, Y).";
const B: &str = "?- anc(john, Y).\nanc(X, Y) :- par(X, Y).\nanc(X, Y) :- par(X, Z), anc(Z, Y).";
const C: &str = "?- anc(john, Y).\nanc(X, Y) :- par(X, Y).\nanc(X, Y) :- anc(X, Z), anc(Z, Y).";
const D: &str =
    "?- ancjohn(Y).\nancjohn(Y) :- par(john, Y).\nancjohn(Y) :- ancjohn(Z), par(Z, Y).";

fn eval_on_db(src: &str, build: impl Fn(&mut Program) -> Database) -> (Vec<Vec<String>>, EvalStats) {
    let mut p = parse_program(src).unwrap();
    let db = build(&mut p);
    let (ans, stats) = answer(&p, &db, Strategy::SemiNaive);
    let mut names: Vec<Vec<String>> = ans
        .iter()
        .map(|t| t.iter().map(|&c| p.symbols.const_name(c).to_owned()).collect())
        .collect();
    names.sort();
    (names, stats)
}

fn forest(n: usize, seed: u64) -> impl Fn(&mut Program) -> Database {
    move |p| workload::random_forest(p, "par", "john", n, seed)
}

#[test]
fn all_four_programs_equivalent() {
    for seed in [3u64, 17, 99] {
        let results: Vec<_> = [A, B, C, D]
            .iter()
            .map(|src| eval_on_db(src, forest(60, seed)).0)
            .collect();
        for w in results.windows(2) {
            assert_eq!(w[0], w[1], "Example 1.1 semantic equivalence (seed {seed})");
        }
    }
}

#[test]
fn program_d_does_least_work() {
    let stats: Vec<EvalStats> = [A, B, C, D]
        .iter()
        .map(|src| eval_on_db(src, forest(250, 5)).1)
        .collect();
    let (a, b, c, d) = (stats[0], stats[1], stats[2], stats[3]);
    assert!(d.work() < a.work(), "D < A: {} vs {}", d.work(), a.work());
    assert!(d.work() < b.work(), "D < B: {} vs {}", d.work(), b.work());
    assert!(d.work() < c.work(), "D < C: {} vs {}", d.work(), c.work());
    // nonlinear C derives the most
    assert!(c.work() >= a.work(), "C ≥ A");
}

#[test]
fn magic_brings_a_close_to_d() {
    // On a forest where everything descends from john plus heavy noise,
    // magic(A) must be within a small constant of D's tuple count.
    let build = |p: &mut Program| {
        let mut db = workload::random_forest(p, "par", "john", 150, 5);
        let noise = workload::wide(p, "par", "elsewhere", 0, 15, 10);
        for (pred, rel) in noise.iter() {
            for t in rel.iter() {
                db.insert(pred, t.clone());
            }
        }
        db
    };
    let mut pa = parse_program(A).unwrap();
    let db_a = build(&mut pa);
    let magic_a = magic_transform(&pa).unwrap();
    let (_, stats_magic_a) = answer(&magic_a.program, &db_a, Strategy::SemiNaive);

    let mut pd = parse_program(D).unwrap();
    let db_d = build(&mut pd);
    let (_, stats_d) = answer(&pd, &db_d, Strategy::SemiNaive);

    // magic(A) tuples = answers + magic marks ≈ 2× D's tuples
    assert!(
        stats_magic_a.tuples_derived <= 3 * stats_d.tuples_derived + 10,
        "magic(A) ({}) should be within ~3x of D ({})",
        stats_magic_a.tuples_derived,
        stats_d.tuples_derived
    );

    // while plain A derives many more tuples than D on noisy data
    let (_, stats_a) = answer(&pa, &db_a, Strategy::SemiNaive);
    assert!(stats_a.tuples_derived > 2 * stats_d.tuples_derived);
}

#[test]
fn magic_helps_c_less_than_a() {
    let build = |p: &mut Program| {
        let mut db = workload::random_forest(p, "par", "john", 120, 9);
        let noise = workload::wide(p, "par", "elsewhere", 0, 10, 8);
        for (pred, rel) in noise.iter() {
            for t in rel.iter() {
                db.insert(pred, t.clone());
            }
        }
        db
    };
    let work_of = |src: &str| {
        let mut p = parse_program(src).unwrap();
        let db = build(&mut p);
        let magic = magic_transform(&p).unwrap();
        let (_, stats) = answer(&magic.program, &db, Strategy::SemiNaive);
        stats.work()
    };
    let wa = work_of(A);
    let wc = work_of(C);
    assert!(
        wc > 3 * wa,
        "magic(C) ({wc}) should remain far costlier than magic(A) ({wa}) — \
         the paper's 'magic does not significantly simplify Program C'"
    );
}

#[test]
fn grammars_of_a_b_c_define_the_same_language() {
    use selprop_core::chain::ChainProgram;
    use selprop_grammar::analysis::words_up_to;
    let words: Vec<_> = [A, B, C]
        .iter()
        .map(|src| {
            let chain = ChainProgram::parse(src).unwrap();
            words_up_to(&chain.grammar(), 6)
        })
        .collect();
    assert_eq!(words[0], words[1]);
    assert_eq!(words[1], words[2]);
    assert_eq!(words[0].len(), 6); // par^1..6
}
