//! Integration tests for Theorem 3.3 — both directions, across crates.
//!
//! The "if" direction is tested constructively: the engine's rewrites are
//! validated for finite-query equivalence against the original program on
//! randomized databases and on IG truncations. The "only if" direction is
//! tested through its machinery: the Lemma 5.1 encoding (WS1S) certifies
//! that every monadic program the engine emits defines a regular
//! language, and the diagonal case's pumping certificates are checked
//! against CYK membership.

use selprop_automata::equiv::equivalent as dfa_equivalent;
use selprop_core::chain::ChainProgram;
use selprop_core::propagate::{propagate, Propagation};
use selprop_core::workload;
use selprop_datalog::db::Database;
use selprop_datalog::eval::{answer, Strategy};
use selprop_grammar::cnf::CnfGrammar;
use selprop_ws1s::encode::{encode_monadic_program, extract_language};

/// Evaluates a program on a database built over its own symbol space and
/// returns answers as name vectors.
fn run(program: &selprop_datalog::Program, db: &Database) -> Vec<Vec<String>> {
    let (ans, _) = answer(program, db, Strategy::SemiNaive);
    let mut v: Vec<Vec<String>> = ans
        .iter()
        .map(|t| {
            t.iter()
                .map(|&c| program.symbols.const_name(c).to_owned())
                .collect()
        })
        .collect();
    v.sort();
    v
}

fn equivalent_on_random_dbs(chain: &ChainProgram, rewrite: &selprop_datalog::Program) {
    let edbs: Vec<String> = chain
        .edbs()
        .iter()
        .map(|&p| chain.program.symbols.pred_name(p).to_owned())
        .collect();
    let edb_refs: Vec<&str> = edbs.iter().map(String::as_str).collect();
    for seed in 0..6u64 {
        let mut p1 = chain.program.clone();
        let db1 = workload::random_labeled_digraph(&mut p1, &edb_refs, "c", 12, 30, seed);
        let mut p2 = rewrite.clone();
        let db2 = workload::random_labeled_digraph(&mut p2, &edb_refs, "c", 12, 30, seed);
        assert_eq!(
            run(&p1, &db1),
            run(&p2, &db2),
            "rewrite differs from original on seed {seed}"
        );
    }
}

const REGULAR_GALLERY: [&str; 4] = [
    // Program A, goal p(c, Y)
    "?- anc(c, Y).\nanc(X, Y) :- par(X, Y).\nanc(X, Y) :- anc(X, Z), par(Z, Y).",
    // Program B, goal p(X, c)
    "?- anc(X, c).\nanc(X, Y) :- par(X, Y).\nanc(X, Y) :- par(X, Z), anc(Z, Y).",
    // two-EDB regular, goal p(c, Y): L = b1 b2*
    "?- p(c, Y).\np(X, Y) :- b1(X, Y).\np(X, Y) :- p(X, Z), b2(Z, Y).",
    // boolean goal p(c, d): L = b1 b2+ (left-linear-ish)
    "?- p(c, d).\np(X, Y) :- b1(X, X1), b2(X1, Y).\np(X, Y) :- p(X, Z), b2(Z, Y).",
];

#[test]
fn if_direction_rewrites_are_equivalent() {
    for src in REGULAR_GALLERY {
        let chain = ChainProgram::parse(src).unwrap();
        let Propagation::Propagated { program, .. } = propagate(&chain).unwrap() else {
            panic!("gallery program should propagate: {src}");
        };
        assert!(program.is_monadic(), "rewrite must be monadic");
        equivalent_on_random_dbs(&chain, &program);
    }
}

#[test]
fn only_if_machinery_rewrites_define_l_h() {
    // For goal p(c, Y) rewrites: feed them to the Lemma 5.1 encoder; the
    // extracted regular language must equal L(H) (checked against the
    // grammar's own exact compilation).
    let sources = [
        "?- anc(c, Y).\nanc(X, Y) :- par(X, Y).\nanc(X, Y) :- anc(X, Z), par(Z, Y).",
        "?- p(c, Y).\np(X, Y) :- b1(X, Y).\np(X, Y) :- p(X, Z), b2(Z, Y).",
    ];
    for src in sources {
        let chain = ChainProgram::parse(src).unwrap();
        let Propagation::Propagated {
            program,
            certificate,
        } = propagate(&chain).unwrap()
        else {
            panic!("should propagate");
        };
        let origin = match &chain.goal_form {
            selprop_core::chain::GoalForm::BoundFirst(c) => c.clone(),
            _ => unreachable!(),
        };
        let enc = encode_monadic_program(&program, &origin).expect("rewrite encodes");
        let lang = extract_language(&enc);
        let expected = certificate.dfa(&chain);
        // alphabets may order EDBs identically (both derive from the
        // program's EDB order), so direct equivalence applies
        assert!(
            dfa_equivalent(&lang, &expected),
            "WS1S language of the rewrite differs from L(H) for {src}"
        );
    }
}

#[test]
fn diagonal_decision_is_exact_on_gallery() {
    let finite = [
        "?- p(X, X).\np(X, Y) :- b(X, Y).",
        "?- p(X, X).\np(X, Y) :- b(X, Y).\np(X, Y) :- b(X, Z), b(Z, Y).",
        "?- p(X, X).\np(X, Y) :- b1(X, Z), b2(Z, Y).\np(X, Y) :- b2(X, Y).",
    ];
    for src in finite {
        let chain = ChainProgram::parse(src).unwrap();
        assert!(
            propagate(&chain).unwrap().is_propagated(),
            "finite L(H) must propagate: {src}"
        );
    }
    let infinite = [
        "?- p(X, X).\np(X, Y) :- b(X, Y).\np(X, Y) :- p(X, Z), b(Z, Y).",
        "?- p(X, X).\np(X, Y) :- b1(X, X1), b2(X1, Y).\np(X, Y) :- b1(X, X1), p(X1, X2), b2(X2, Y).",
        "?- p(X, X).\np(X, Y) :- b(X, Y).\np(X, Y) :- p(X, Z), p(Z, Y).",
    ];
    for src in infinite {
        let chain = ChainProgram::parse(src).unwrap();
        match propagate(&chain).unwrap() {
            Propagation::Impossible { pump } => {
                let cnf = CnfGrammar::from_cfg(&chain.grammar());
                for i in 0..4 {
                    assert!(cnf.accepts(&pump.word(i)), "bad pump witness for {src}");
                }
            }
            other => panic!("infinite L(H) must be Impossible for {src}, got {other:?}"),
        }
    }
}

#[test]
fn diagonal_rewrite_equivalence_on_cycle_unions() {
    let chain = ChainProgram::parse(
        "?- p(X, X).\n\
         p(X, Y) :- b(X, Y).\n\
         p(X, Y) :- b(X, Z1), b(Z1, Z2), b(Z2, Y).",
    )
    .unwrap();
    let Propagation::Propagated { program, .. } = propagate(&chain).unwrap() else {
        panic!("finite L");
    };
    // L = {b, b^3}: on unions of cycles the diagonal answers are the
    // nodes on cycles of length dividing 1 or 3 — i.e. self-loops and
    // 3-cycles (and 1-cycles count for both).
    for lengths in [vec![1usize, 3], vec![2, 3, 4], vec![5], vec![1, 2, 6]] {
        let mut p1 = chain.program.clone();
        let db1 = workload::cycles(&mut p1, "b", &lengths);
        let mut p2 = program.clone();
        let db2 = workload::cycles(&mut p2, "b", &lengths);
        assert_eq!(run(&p1, &db1), run(&p2, &db2), "cycles {lengths:?}");
    }
}

#[test]
fn rewrites_validate_on_ig_truncations() {
    // Prop 3.1 as a rewrite test bench: original and rewrite agree on IG_n.
    use selprop_core::inf_model::h_of_ig;
    let chain = ChainProgram::parse(
        "?- p(c, Y).\np(X, Y) :- b1(X, Y).\np(X, Y) :- p(X, Z), b2(Z, Y).",
    )
    .unwrap();
    let Propagation::Propagated { program, .. } = propagate(&chain).unwrap() else {
        panic!("regular L");
    };
    let rewrite_chain_view = ChainProgram {
        program: program.clone(),
        goal_form: chain.goal_form.clone(),
    };
    // h_of_ig needs a chain-shaped goal only for the origin name; build
    // truncations manually for the rewrite by sharing the EDB alphabet:
    let from_h = h_of_ig(&chain, 5);
    // evaluate the rewrite on the same truncation
    let (chain2, trunc) = selprop_core::inf_model::ig_truncation(&chain, 5);
    let mut p2 = program.clone();
    // copy facts into the rewrite's symbol space by name
    let mut db2 = Database::new();
    for (pred, rel) in trunc.db.iter() {
        let name = chain2.program.symbols.pred_name(pred).to_owned();
        let p = p2.symbols.predicate(&name);
        for t in rel.iter() {
            let named: Vec<_> = t
                .iter()
                .map(|&c| {
                    let n = chain2.program.symbols.const_name(c).to_owned();
                    p2.symbols.constant(&n)
                })
                .collect();
            db2.insert(p, named);
        }
    }
    let (ans2, _) = answer(&p2, &db2, Strategy::SemiNaive);
    // compare answer node label-sets
    let mut names2: Vec<String> = ans2
        .iter()
        .map(|t| p2.symbols.const_name(t[0]).to_owned())
        .collect();
    names2.sort();
    let al = chain.grammar().alphabet.clone();
    let mut names1: Vec<String> = from_h
        .iter()
        .map(|w| {
            let mut s = String::from("n");
            for &sym in w {
                s.push('_');
                s.push_str(al.name(sym));
            }
            s
        })
        .collect();
    names1.sort();
    assert_eq!(names1, names2, "rewrite disagrees with H on IG_5");
    let _ = rewrite_chain_view;
}
