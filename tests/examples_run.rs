//! The example runner: every runnable walkthrough in `examples/` is
//! executed end-to-end as part of `cargo test`. The examples carry
//! their own assertions (e.g. `live_updates` cross-checks incremental
//! maintenance against a from-scratch recompute), so a nonzero exit —
//! or a panic — here means a walkthrough regressed.
//!
//! `cargo test` builds the package's examples before running tests, so
//! the binaries are guaranteed to exist next to the test executable
//! (`target/<profile>/examples/`).

use std::path::PathBuf;
use std::process::Command;

/// Every example target of the umbrella crate, by name.
const EXAMPLES: &[&str] = &[
    "ancestor_four_ways",
    "inf_model",
    "live_updates",
    "magic_sets",
    "negation_boundary",
    "query_cache",
    "quickstart",
    "selection_propagation",
    "server",
    "snapshot_restore",
    "ws1s_explorer",
];

/// The example binary path, derived from the test executable's own
/// location (`target/<profile>/deps/<test>-<hash>`).
fn example_bin(name: &str) -> PathBuf {
    let mut p = std::env::current_exe().expect("test binary path");
    p.pop(); // deps/
    p.pop(); // <profile>/
    p.push("examples");
    p.push(name);
    p
}

#[test]
fn all_examples_run_to_completion() {
    for name in EXAMPLES {
        let bin = example_bin(name);
        assert!(
            bin.exists(),
            "example binary missing: {} (cargo builds examples with tests)",
            bin.display()
        );
        let out = Command::new(&bin)
            .output()
            .unwrap_or_else(|e| panic!("spawn {name}: {e}"));
        assert!(
            out.status.success(),
            "example {name} failed ({}):\n--- stdout ---\n{}\n--- stderr ---\n{}",
            out.status,
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr)
        );
    }
}
