//! Reader/writer stress: N reader threads pin epoch snapshots and
//! query while the writer applies a randomized churn stream of batched
//! update rounds (fact inserts, retractions, mixed rounds, and a rule
//! drop/re-add pair).
//!
//! The consistency contract, asserted on **every** read:
//!
//! - the observed database equals the from-scratch `reference`
//!   evaluation of exactly the applied-round prefix named by the
//!   snapshot's epoch (linearizable at round granularity — a mid-round
//!   state matches no prefix and would fail);
//! - epochs observed by one reader never go backwards;
//! - a snapshot held across arbitrary churn keeps serving its pinned
//!   prefix.
//!
//! The acceptance bar is ≥1000 such reads across the strategy × reader
//! sweep; the run prints its tally and asserts it.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;

use selprop_datalog::db::Tuple;
use selprop_datalog::eval::Strategy;
use selprop_datalog::reference;
use selprop_datalog::{
    parse_program, CompactionPolicy, Database, Pred, Program, RuleId, Server, UpdateRound,
};

const ROUNDS: usize = 24;
const READERS: usize = 4;
const MIN_READS_PER_READER: usize = 100;

/// Deterministic xorshift64* stream for the churn schedule.
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Sorted nonempty `(pred, tuples)` view — the canonical form both the
/// snapshot database and the reference model are reduced to (stores
/// keep every relation they ever tracked; the reference only the
/// program's).
fn canon(db: &Database) -> Vec<(Pred, Vec<Tuple>)> {
    db.sorted_models().into_iter().filter(|(_, rows)| !rows.is_empty()).collect()
}

/// The full expected state for one prefix: stored EDB facts plus the
/// from-scratch reference IDB model of the prefix's program variant.
fn expected_state(program: &Program, edb: &Database) -> Vec<(Pred, Vec<Tuple>)> {
    let spec = reference::evaluate(program, edb, Strategy::SemiNaive);
    let mut merged = edb.clone();
    for (p, r) in spec.idb.iter() {
        for t in r.sorted() {
            merged.insert(p, t);
        }
    }
    canon(&merged)
}

/// One strategy's full stress run; returns the number of consistent
/// concurrent reads it performed. With `policy` set, churn keeps
/// tripping the compaction bounds, so compactions interleave with the
/// pinned readers (queued while pins exist, run at drain points).
fn stress_one_strategy(strategy: Strategy, seed: u64, policy: Option<CompactionPolicy>) -> usize {
    let mut p = parse_program(
        "?- anc(john, Y).\n\
         anc(X, Y) :- par(X, Y).\n\
         anc(X, Y) :- anc(X, Z), par(Z, Y).",
    )
    .expect("valid program");
    let par = p.symbols.get_predicate("par").unwrap();
    // The edited program variant for prefixes where the transitive rule
    // is dropped.
    let mut p_minus = p.clone();
    p_minus.rules = vec![p.rules[0].clone()];

    // A pool of chain edges rooted at john; rounds draw from it.
    let names: Vec<_> = (0..=6 * ROUNDS)
        .map(|i| {
            if i == 0 {
                p.symbols.constant("john")
            } else {
                p.symbols.constant(&format!("c{i}"))
            }
        })
        .collect();
    let edge = |i: usize| -> Tuple { vec![names[i], names[i + 1]] };

    // Bulk-load a prefix of the chain, then build the randomized churn
    // stream AND the expected state per applied-round prefix, up front.
    let mut db0 = Database::new();
    let mut len = 8usize;
    for i in 0..len {
        db0.insert(par, edge(i));
    }
    let mut rng = Rng(seed | 1);
    let mut rounds: Vec<UpdateRound> = Vec::new();
    let mut expected: Vec<Vec<(Pred, Vec<Tuple>)>> = Vec::new();
    let mut mirror = db0.clone();
    let mut closure_active = true;
    // The rule drop and its re-add land at two fixed rounds mid-stream.
    let drop_at = ROUNDS / 3;
    let readd_at = 2 * ROUNDS / 3;
    expected.push(expected_state(&p, &mirror)); // epoch 0
    for r in 0..ROUNDS {
        let mut round = UpdateRound::new();
        if r == drop_at {
            round = round.drop_rule(RuleId(1));
            closure_active = false;
        } else if r == readd_at {
            round = round.add_rule(p.rules[1].clone());
            closure_active = true;
        }
        // Fact churn rides along in the same round.
        match rng.below(3) {
            0 => {
                // Grow the chain by 1–4 edges.
                for _ in 0..=rng.below(4) {
                    round = round.insert(par, edge(len));
                    mirror.insert(par, edge(len));
                    len += 1;
                }
            }
            1 if len > 4 => {
                // Cut 1–2 edges off the tail.
                for _ in 0..=rng.below(2).min(len - 4) {
                    len -= 1;
                    round = round.retract(par, edge(len));
                    assert!(mirror.remove(par, &edge(len)));
                }
            }
            _ => {
                // Mixed: cut the tail edge and grow two — one DRed +
                // one resume pass for the whole batch.
                len -= 1;
                round = round.retract(par, edge(len));
                assert!(mirror.remove(par, &edge(len)));
                for _ in 0..2 {
                    round = round.insert(par, edge(len));
                    mirror.insert(par, edge(len));
                    len += 1;
                }
            }
        }
        rounds.push(round);
        let variant = if closure_active { &p } else { &p_minus };
        expected.push(expected_state(variant, &mirror));
    }
    let expected = Arc::new(expected);

    let server = Server::from_database(&p, &db0, strategy);
    if let Some(pol) = policy {
        server.set_compaction_policy(Some(pol));
    }
    let writer_done = Arc::new(AtomicBool::new(false));
    let concurrent_reads = Arc::new(AtomicUsize::new(0));

    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let server = server.clone();
            let expected = Arc::clone(&expected);
            let writer_done = Arc::clone(&writer_done);
            let concurrent_reads = Arc::clone(&concurrent_reads);
            thread::spawn(move || {
                let mut last_epoch = 0u64;
                let mut reads = 0usize;
                loop {
                    let was_concurrent = !writer_done.load(Ordering::Acquire);
                    let snap = server.snapshot();
                    let e = snap.epoch() as usize;
                    assert!(e < expected.len(), "epoch beyond the stream");
                    assert!(
                        snap.epoch() >= last_epoch,
                        "per-reader epochs must be monotone ({last_epoch} -> {e})"
                    );
                    last_epoch = snap.epoch();
                    // The read IS a from-scratch-checked prefix: full
                    // database equality against the precomputed
                    // reference model of applied-round prefix `e`.
                    assert_eq!(
                        canon(&snap.database()),
                        expected[e],
                        "read at epoch {e} must equal the reference model of that prefix"
                    );
                    reads += 1;
                    if was_concurrent {
                        concurrent_reads.fetch_add(1, Ordering::Relaxed);
                    }
                    if reads >= MIN_READS_PER_READER && writer_done.load(Ordering::Acquire) {
                        return reads;
                    }
                }
            })
        })
        .collect();

    // The writer: apply the stream, holding one snapshot pinned across
    // the whole second half (including the rule re-add) to prove
    // reclamation never disturbs a pinned view.
    let mut held: Option<selprop_datalog::Snapshot> = None;
    for (i, round) in rounds.iter().enumerate() {
        server.apply(round);
        if i == ROUNDS / 2 {
            held = Some(server.snapshot());
        }
    }
    let held = held.expect("pinned mid-stream");
    assert_eq!(
        canon(&held.database()),
        expected[held.epoch() as usize],
        "a snapshot held across churn still serves its pinned prefix"
    );
    writer_done.store(true, Ordering::Release);

    let total: usize = readers
        .into_iter()
        .map(|r| r.join().expect("reader thread panicked"))
        .sum();
    // The pinned snapshot survives every later round, reclamation, and
    // however many compactions were queued and drained around it.
    assert_eq!(canon(&held.database()), expected[held.epoch() as usize]);
    assert_eq!(server.current_epoch() as usize, ROUNDS);
    drop(held);
    if policy.is_some() {
        // The last unpin drained over the idle store: whatever
        // compaction the churn queued has run, and memory is bounded by
        // the live rows again.
        let ms = server.mem_stats();
        assert_eq!(ms.live_rows, ms.total_rows, "final drain left tombstones behind");
        assert!(
            server.compactions() >= 1,
            "churn under an aggressive policy must have compacted"
        );
    }
    assert_eq!(
        canon(&server.snapshot().database()),
        expected[ROUNDS],
        "final state = the full-stream reference model"
    );
    println!(
        "{strategy:?}: {total} reads ({} while the writer was live), all prefix-consistent",
        concurrent_reads.load(Ordering::Relaxed)
    );
    total
}

#[test]
fn concurrent_reads_are_prefix_consistent_across_strategies() {
    let mut total = 0usize;
    for (strategy, seed) in [
        (Strategy::SemiNaive, 0xA5A5_0001u64),
        (Strategy::SemiNaiveParallel { threads: 2 }, 0xA5A5_0002),
        (Strategy::SemiNaiveParallel { threads: 4 }, 0xA5A5_0003),
    ] {
        total += stress_one_strategy(strategy, seed, None);
    }
    assert!(
        total >= 1000,
        "acceptance bar: ≥1000 randomized reads under churn (got {total})"
    );
    println!("total consistent reads across strategies: {total}");
}

#[test]
fn compaction_under_pinned_readers_stays_prefix_consistent() {
    // Same harness, but an aggressive policy keeps tripping the
    // compaction bounds on every retracting round: compactions queue
    // while readers hold pins, run whenever a drain finds the table
    // unpinned, and must never disturb a pinned view or a concurrent
    // read. Every read is still checked against the from-scratch
    // reference model of its exact epoch prefix.
    let aggressive = CompactionPolicy {
        min_dead_rows: 1,
        dead_percent: 1,
    };
    let mut total = 0usize;
    for (strategy, seed) in [
        (Strategy::SemiNaive, 0xC0DE_0001u64),
        (Strategy::SemiNaiveParallel { threads: 2 }, 0xC0DE_0002),
        (Strategy::SemiNaiveParallel { threads: 4 }, 0xC0DE_0003),
    ] {
        total += stress_one_strategy(strategy, seed, Some(aggressive));
    }
    assert!(
        total >= 1000,
        "acceptance bar: ≥1000 randomized reads under compacting churn (got {total})"
    );
    println!("total consistent reads across compacting strategies: {total}");
}
