//! Fault injection over the snapshot persistence layer
//! (`selprop_datalog::persist`), driven through **real** materialization
//! snapshots — not synthetic containers.
//!
//! The crash-safety contract, exercised exhaustively:
//!
//! - truncating a snapshot at **every** byte boundary yields a clean
//!   [`PersistError`] (never a panic, never a silently wrong store);
//! - corrupting **any** single byte yields a clean error — the trailing
//!   checksum (lane-interleaved FNV-1a 64) catches every one-byte
//!   change, and the header checks (magic, version, stored length)
//!   catch framing damage before the payload is even parsed;
//! - a crash between writing the temp file and the atomic rename leaves
//!   the previous snapshot intact and restorable;
//! - an intact snapshot of a large closure round-trips bit-for-bit and
//!   behaves identically under subsequent updates.

use selprop_datalog::eval::Strategy;
use selprop_datalog::{
    parse_program, Materialization, PersistError, Program, RuleId, Server,
};

const SRC: &str = "?- anc(john, Y).\n\
                   anc(X, Y) :- par(X, Y).\n\
                   anc(X, Y) :- anc(X, Z), par(Z, Y).";

fn chain_edges(p: &mut Program, n: usize) -> Vec<Vec<selprop_datalog::Const>> {
    let mut prev = p.symbols.constant("john");
    (1..=n)
        .map(|i| {
            let c = p.symbols.constant(&format!("c{i}"));
            let t = vec![prev, c];
            prev = c;
            t
        })
        .collect()
}

/// A small store with every kind of persisted state: live rows, dead
/// rows with epoch tags, a dropped rule slot, and a non-zero epoch —
/// built through the server so the epoch machinery is engaged.
fn interesting_snapshot() -> Vec<u8> {
    let mut p = parse_program(SRC).unwrap();
    let par = p.symbols.get_predicate("par").unwrap();
    let edges = chain_edges(&mut p, 12);
    let server = Server::new(&p, Strategy::SemiNaive);
    server.insert_facts(par, &edges);
    // Pin a snapshot so the retraction's tombstone tags are *retained*
    // in the saved image (reclamation is deferred past the save).
    let pin = server.snapshot();
    server.retract_facts(par, &edges[6..8]);
    assert!(server.drop_rule(RuleId(1)));
    let dir = std::env::temp_dir().join(format!("selprop-fault-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("interesting.snap");
    server.save(&path).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    drop(pin);
    std::fs::remove_dir_all(&dir).ok();
    bytes
}

#[test]
fn every_truncation_boundary_fails_cleanly() {
    let bytes = interesting_snapshot();
    assert!(
        Materialization::from_bytes(&bytes).is_ok(),
        "the intact snapshot must restore"
    );
    for len in 0..bytes.len() {
        let err = Materialization::from_bytes(&bytes[..len])
            .err()
            .unwrap_or_else(|| panic!("truncation to {len}/{} bytes must fail", bytes.len()));
        // Truncations fail at the framing layer: the header length check
        // (or, for sub-header prefixes, the magic/length probes) fires
        // before any payload byte is interpreted.
        assert!(
            matches!(
                err,
                PersistError::TooShort | PersistError::LengthMismatch { .. }
            ),
            "truncation to {len} bytes: unexpected error {err:?}"
        );
    }
}

#[test]
fn every_single_byte_corruption_fails_cleanly() {
    let bytes = interesting_snapshot();
    for offset in 0..bytes.len() {
        for flip in [0x01u8, 0xFF] {
            let mut bad = bytes.clone();
            bad[offset] ^= flip;
            assert!(
                Materialization::from_bytes(&bad).is_err(),
                "corrupting byte {offset} (xor {flip:#x}) must not restore a store"
            );
        }
    }
}

#[test]
fn corrupted_header_fields_report_their_specific_error() {
    let bytes = interesting_snapshot();

    let mut bad_magic = bytes.clone();
    bad_magic[0] ^= 0xFF;
    assert!(matches!(
        Materialization::from_bytes(&bad_magic),
        Err(PersistError::BadMagic)
    ));

    // The version field sits right after the 8-byte magic; a future
    // version must be rejected as such, before checksum or payload.
    let mut bad_version = bytes.clone();
    bad_version[8] ^= 0x40;
    assert!(matches!(
        Materialization::from_bytes(&bad_version),
        Err(PersistError::BadVersion(_))
    ));

    // Trailing garbage breaks the stored-length check.
    let mut padded = bytes.clone();
    padded.extend_from_slice(b"junk");
    assert!(matches!(
        Materialization::from_bytes(&padded),
        Err(PersistError::LengthMismatch { .. })
    ));
}

#[test]
fn sampled_faults_on_a_large_closure_snapshot() {
    // A 100-edge chain closes to 5050 ancestor pairs — a snapshot in the
    // hundred-kilobyte range. Exhaustive per-byte injection would be
    // quadratic, so sample offsets densely instead (every 251st byte,
    // plus the first and last 64).
    let mut p = parse_program(SRC).unwrap();
    let par = p.symbols.get_predicate("par").unwrap();
    let edges = chain_edges(&mut p, 100);
    let mut m = Materialization::new(&p, Strategy::SemiNaive);
    m.insert_facts(par, &edges);
    m.retract_facts(par, &edges[40..42]);
    let bytes = m.to_bytes();
    assert!(bytes.len() > 50_000, "expected a large snapshot, got {}", bytes.len());

    let mut offsets: Vec<usize> = (0..bytes.len()).step_by(251).collect();
    offsets.extend(0..64.min(bytes.len()));
    offsets.extend(bytes.len().saturating_sub(64)..bytes.len());
    for &offset in &offsets {
        let mut bad = bytes.clone();
        bad[offset] ^= 0xA5;
        assert!(
            Materialization::from_bytes(&bad).is_err(),
            "corrupting byte {offset} of the large snapshot must fail"
        );
    }
    for &len in offsets.iter().filter(|&&o| o < bytes.len()) {
        assert!(
            Materialization::from_bytes(&bytes[..len]).is_err(),
            "truncating the large snapshot to {len} bytes must fail"
        );
    }

    // The intact image restores faithfully and keeps evolving correctly.
    let mut m2 = Materialization::from_bytes(&bytes).unwrap();
    assert_eq!(m2.to_bytes(), bytes, "round-trip is bit-for-bit");
    assert_eq!(
        m.database().sorted_models(),
        m2.database().sorted_models()
    );
    m.insert_facts(par, &edges[40..41]);
    m2.insert_facts(par, &edges[40..41]);
    assert_eq!(
        m.database().sorted_models(),
        m2.database().sorted_models(),
        "original and restored stores stay equivalent under updates"
    );
    assert_eq!(m.stats(), m2.stats(), "work counters advance identically");
}

#[test]
fn crash_before_rename_preserves_the_previous_snapshot() {
    let dir = std::env::temp_dir().join(format!("selprop-crash-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("store.snap");

    let mut p = parse_program(SRC).unwrap();
    let par = p.symbols.get_predicate("par").unwrap();
    let edges = chain_edges(&mut p, 8);
    let mut m = Materialization::new(&p, Strategy::SemiNaive);
    m.insert_facts(par, &edges[..4]);
    m.save(&path).unwrap();
    let saved = m.to_bytes();

    // The store moves on and a second save "crashes" partway: the temp
    // file holds a torn prefix, the rename never happened.
    m.insert_facts(par, &edges[4..]);
    let newer = m.to_bytes();
    let tmp = dir.join("store.snap.tmp");
    std::fs::write(&tmp, &newer[..newer.len() / 2]).unwrap();

    // Restore finds the previous snapshot, intact.
    let restored = Materialization::restore(&path).unwrap();
    assert_eq!(restored.to_bytes(), saved, "previous snapshot untouched by the crash");
    // And the torn temp file itself never restores silently.
    assert!(Materialization::restore(&tmp).is_err());

    // A completed save (temp + rename) replaces it atomically.
    m.save(&path).unwrap();
    assert_eq!(Materialization::restore(&path).unwrap().to_bytes(), newer);

    std::fs::remove_dir_all(&dir).ok();
}
