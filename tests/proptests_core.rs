//! Property tests for the propagation engine: random *regular-by-
//! construction* chain programs must always propagate, and their rewrites
//! must agree with the originals on random databases; random chain
//! programs never produce an unsound outcome.

use proptest::prelude::*;
use selprop_core::chain::{ChainProgram, GoalForm};
use selprop_core::propagate::{propagate, Propagation};
use selprop_core::workload;
use selprop_datalog::eval::{answer, Strategy as EvalStrategy};
use selprop_grammar::cnf::CnfGrammar;

/// Builds a random right-linear chain program over EDBs {b1, b2}:
/// guaranteed-regular language, arbitrary shape.
fn arb_right_linear() -> impl Strategy<Value = String> {
    // rules: p -> terminal word (1..3) | terminal word then p
    let word = proptest::collection::vec(0u8..2, 1..3);
    proptest::collection::vec((word, proptest::bool::ANY), 1..4).prop_map(|rules| {
        let mut s = String::from("?- p(c, Y).\n");
        let mut any_base = false;
        for (w, recurse) in &rules {
            let mut vars = vec!["X".to_owned()];
            for i in 0..w.len() {
                vars.push(format!("V{i}"));
            }
            *vars.last_mut().unwrap() = "Y".to_owned();
            let mut body: Vec<String> = w
                .iter()
                .enumerate()
                .map(|(i, &b)| format!("b{}({}, {})", b + 1, vars[i], vars[i + 1]))
                .collect();
            if *recurse {
                // rewrite last hop through p: ... p(Vk, Y)
                let k = w.len();
                let pre_var = if k == 1 { "X" } else { &vars[k - 1] };
                body.pop();
                body.push(format!("b{}({}, M)", w[k - 1] + 1, pre_var));
                body.push("p(M, Y)".to_owned());
            } else {
                any_base = true;
            }
            s.push_str(&format!("p(X, Y) :- {}.\n", body.join(", ")));
        }
        if !any_base {
            s.push_str("p(X, Y) :- b1(X, Y).\n");
        }
        s
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn right_linear_programs_always_propagate(src in arb_right_linear()) {
        let chain = ChainProgram::parse(&src).expect("generated program is chain");
        prop_assert_eq!(&chain.goal_form, &GoalForm::BoundFirst("c".to_owned()));
        let outcome = propagate(&chain).unwrap();
        prop_assert!(outcome.is_propagated(), "right-linear must propagate: {}", src);
    }

    #[test]
    fn rewrites_agree_with_originals(src in arb_right_linear(), seed in 0u64..1000) {
        let chain = ChainProgram::parse(&src).unwrap();
        let Propagation::Propagated { program, .. } = propagate(&chain).unwrap() else {
            return Err(TestCaseError::fail("should propagate"));
        };
        prop_assert!(program.is_monadic());
        let mut p1 = chain.program.clone();
        let db1 = workload::random_labeled_digraph(&mut p1, &["b1", "b2"], "c", 10, 24, seed);
        let mut p2 = program.clone();
        let db2 = workload::random_labeled_digraph(&mut p2, &["b1", "b2"], "c", 10, 24, seed);
        let run = |p: &selprop_datalog::Program, db: &selprop_datalog::Database| {
            let (ans, _) = answer(p, db, EvalStrategy::SemiNaive);
            let mut v: Vec<Vec<String>> = ans
                .iter()
                .map(|t| t.iter().map(|&c| p.symbols.const_name(c).to_owned()).collect())
                .collect();
            v.sort();
            v
        };
        prop_assert_eq!(run(&p1, &db1), run(&p2, &db2));
    }

    #[test]
    fn diagonal_outcomes_are_sound(src in arb_right_linear()) {
        // switch the goal to p(X, X): outcome must be Propagated (finite)
        // or Impossible (infinite) and certificates must check out.
        let base = ChainProgram::parse(&src).unwrap();
        let p = base.goal_pred();
        let mut program = base.program.clone();
        let x = program.symbols.variable("X");
        program.goal = selprop_datalog::Atom::new(
            p,
            vec![selprop_datalog::Term::Var(x), selprop_datalog::Term::Var(x)],
        );
        let chain = ChainProgram::from_program(program).unwrap();
        match propagate(&chain).unwrap() {
            Propagation::Propagated { program, .. } => {
                prop_assert!(program.is_monadic());
            }
            Propagation::Impossible { pump } => {
                let cnf = CnfGrammar::from_cfg(&chain.grammar());
                for i in 0..3 {
                    prop_assert!(cnf.accepts(&pump.word(i)));
                }
            }
            Propagation::Unknown(_) => {
                return Err(TestCaseError::fail("diagonal goals are decidable"));
            }
        }
    }

    #[test]
    fn certificates_match_language_membership(src in arb_right_linear()) {
        // the certificate DFA and the grammar agree on short words
        let chain = ChainProgram::parse(&src).unwrap();
        let Propagation::Propagated { certificate, .. } = propagate(&chain).unwrap() else {
            return Err(TestCaseError::fail("should propagate"));
        };
        let dfa = certificate.dfa(&chain);
        let cnf = CnfGrammar::from_cfg(&chain.grammar());
        for w in dfa.words_up_to(5) {
            prop_assert!(cnf.accepts(&w), "certificate DFA accepted {:?} not in L(H)", w);
        }
        for w in selprop_grammar::analysis::words_up_to(&chain.grammar(), 5) {
            prop_assert!(dfa.accepts_word(&w), "certificate DFA missed a language word");
        }
    }
}
