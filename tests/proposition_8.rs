//! Integration tests for Section 8: uniformity and containment
//! (Prop. 8.1), boundedness / FO-expressibility (Prop. 8.2).

use selprop_core::bounded::{boundedness, convergence_iterations, Boundedness};
use selprop_core::chain::ChainProgram;
use selprop_core::contain::{contained, equivalent, is_uniform, uniformize, Containment};
use selprop_core::workload;
use selprop_datalog::db::Database;

#[test]
fn prop_8_2_three_way_equivalence_bounded_side() {
    // finite L(H) ⇒ bounded ⇒ FO form exists and is equivalent
    let chain = ChainProgram::parse(
        "?- p(c, Y).\n\
         p(X, Y) :- b(X, Y).\n\
         p(X, Y) :- b(X, Z1), b(Z1, Z2), b(Z2, Y).",
    )
    .unwrap();
    let Boundedness::Bounded {
        fo_program,
        depth_bound,
        words,
    } = boundedness(&chain)
    else {
        panic!("finite language must be bounded");
    };
    assert_eq!(words.len(), 2);
    assert_eq!(depth_bound, 4);
    assert!(
        !fo_program.is_idb(
            fo_program
                .rules
                .iter()
                .flat_map(|r| r.body.iter())
                .map(|a| a.pred)
                .find(|&p| !fo_program.is_idb(p))
                .unwrap()
        ),
        "FO form must be nonrecursive over EDBs"
    );
    // convergence profile constant across database sizes
    let mut p1 = chain.program.clone();
    let mut p2 = chain.program.clone();
    let dbs = vec![
        workload::chain(&mut p1, "b", "c", 4),
        workload::chain(&mut p2, "b", "c", 12),
    ];
    let mut shared = chain.clone();
    shared.program.symbols = p2.symbols;
    let iters = convergence_iterations(&shared, &dbs);
    assert_eq!(iters[0], iters[1], "bounded ⇒ constant iterations: {iters:?}");
}

#[test]
fn prop_8_2_unbounded_side() {
    let chain = ChainProgram::parse(
        "?- anc(c, Y).\nanc(X, Y) :- par(X, Y).\nanc(X, Y) :- anc(X, Z), par(Z, Y).",
    )
    .unwrap();
    let Boundedness::Unbounded { pump } = boundedness(&chain) else {
        panic!("par+ is infinite");
    };
    assert!(pump.word(1).len() > pump.word(0).len());
    // iterations grow with data: not FO
    let mut p1 = chain.program.clone();
    let mut p2 = chain.program.clone();
    let dbs = vec![
        workload::chain(&mut p1, "par", "c", 4),
        workload::chain(&mut p2, "par", "c", 12),
    ];
    let mut shared = chain.clone();
    shared.program.symbols = p2.symbols;
    let iters = convergence_iterations(&shared, &dbs);
    assert!(iters[1] > iters[0], "unbounded ⇒ growing iterations: {iters:?}");
}

#[test]
fn prop_8_1_uniform_programs() {
    // a uniform chain program: each IDB has a dedicated EDB
    let u = ChainProgram::parse(
        "?- p(c, Y).\n\
         p(X, Y) :- bp(X, Y).\n\
         p(X, Y) :- p(X, Z), q(Z, Y).\n\
         q(X, Y) :- bq(X, Y).",
    )
    .unwrap();
    assert!(is_uniform(&u));

    let not_u = ChainProgram::parse(
        "?- p(c, Y).\np(X, Y) :- e(X, Y).\np(X, Y) :- p(X, Z), e(Z, Y).",
    )
    .unwrap();
    assert!(!is_uniform(&not_u));
    let made = uniformize(&not_u);
    assert!(is_uniform(&made));
    // uniformization strictly extends the language (new terminals appear)
    let g_old = not_u.grammar();
    let g_new = made.grammar();
    assert!(g_new.alphabet.len() > g_old.alphabet.len());
}

#[test]
fn containment_decidable_fragments() {
    // regular/regular: decidable with witnesses
    let a = ChainProgram::parse(
        "?- anc(c, Y).\nanc(X, Y) :- par(X, Y).\nanc(X, Y) :- anc(X, Z), par(Z, Y).",
    )
    .unwrap();
    let even = ChainProgram::parse(
        "?- e(c, Y).\ne(X, Y) :- par(X, Z), par(Z, Y).\ne(X, Y) :- e(X, Z), par(Z, W), par(W, Y).",
    )
    .unwrap();
    // even-length paths ⊂ all paths
    assert_eq!(contained(&even, &a, 6), Containment::Contained);
    match contained(&a, &even, 6) {
        Containment::NotContained(w) => assert_eq!(w.len(), 1),
        other => panic!("expected odd-length witness, got {other:?}"),
    }
    // equivalence of A and B forms
    let b = ChainProgram::parse(
        "?- anc(c, Y).\nanc(X, Y) :- par(X, Y).\nanc(X, Y) :- par(X, Z), anc(Z, Y).",
    )
    .unwrap();
    assert_eq!(equivalent(&a, &b, 6), Containment::Contained);
}

#[test]
fn containment_agrees_with_query_answers() {
    // language containment ⇒ query containment on every database
    let small = ChainProgram::parse(
        "?- e(c, Y).\ne(X, Y) :- par(X, Z), par(Z, Y).\ne(X, Y) :- e(X, Z), par(Z, W), par(W, Y).",
    )
    .unwrap();
    let big = ChainProgram::parse(
        "?- anc(c, Y).\nanc(X, Y) :- par(X, Y).\nanc(X, Y) :- anc(X, Z), par(Z, Y).",
    )
    .unwrap();
    assert_eq!(contained(&small, &big, 6), Containment::Contained);
    for seed in 0..4u64 {
        let mut p1 = small.program.clone();
        let db1 = workload::random_labeled_digraph(&mut p1, &["par"], "c", 10, 25, seed);
        let mut p2 = big.program.clone();
        let db2 = workload::random_labeled_digraph(&mut p2, &["par"], "c", 10, 25, seed);
        let run = |p: &selprop_datalog::Program, db: &Database| -> Vec<Vec<String>> {
            let (ans, _) =
                selprop_datalog::eval::answer(p, db, selprop_datalog::eval::Strategy::SemiNaive);
            let mut v: Vec<Vec<String>> = ans
                .iter()
                .map(|t| {
                    t.iter()
                        .map(|&c| p.symbols.const_name(c).to_owned())
                        .collect()
                })
                .collect();
            v.sort();
            v
        };
        let a1 = run(&p1, &db1);
        let a2 = run(&p2, &db2);
        for t in &a1 {
            assert!(a2.contains(t), "query containment violated on seed {seed}");
        }
    }
}

#[test]
fn undecidable_region_returns_unknown_not_wrong() {
    // two non-regular programs with equal languages: must not refute
    let p1 = ChainProgram::parse(
        "?- p(c, Y).\n\
         p(X, Y) :- b1(X, X1), b2(X1, Y).\n\
         p(X, Y) :- b1(X, X1), p(X1, X2), b2(X2, Y).",
    )
    .unwrap();
    let p2 = ChainProgram::parse(
        "?- q(c, Y).\n\
         q(X, Y) :- b1(X, X1), r(X1, Y).\n\
         r(X, Y) :- b2(X, Y).\n\
         r(X, Y) :- q(X, Z), b2(Z, Y).",
    )
    .unwrap();
    // languages: p = b1^n b2^n; q = b1 r; r = b2 | q b2 → q = b1^n b2^n too
    if let Containment::NotContained(w) = contained(&p1, &p2, 8) {
        panic!("false witness {w:?}");
    }
    if let Containment::NotContained(w) = contained(&p2, &p1, 8) {
        panic!("false witness {w:?}");
    }
}
