//! Batched update rounds and rule hot-swap, property-tested.
//!
//! Two contracts from the serving layer, checked over the paper's
//! program gallery (and its magic-transformed closure) with randomized
//! workloads:
//!
//! - **Batch ≡ any sequential order.** One mixed
//!   [`UpdateRound`] (disjoint inserts ∉ store, retracts ⊆ store) must
//!   leave exactly the store that the equivalent single-fact
//!   `insert_facts`/`retract_facts` calls leave in a seed-shuffled
//!   order — sorted-relation equality on the full database plus
//!   [`Provenance::check`] — across strategies × threads ∈ {1, 2, 4}.
//! - **Hot-swap ≡ from-scratch on the edited program.** Dropping a
//!   random subset of rules at fixpoint must leave the model of the
//!   program-without-those-rules; re-adding them must restore the
//!   original model — both against from-scratch reference evaluation.
//!
//! [`Provenance::check`]: selprop_datalog::Provenance::check

use proptest::prelude::*;
use selprop_core::gallery::gallery;
use selprop_core::workload;
use selprop_datalog::db::Tuple;
use selprop_datalog::eval::Strategy;
use selprop_datalog::reference;
use selprop_datalog::{Database, Materialization, Pred, Program, RuleId, Term, UpdateRound};

/// The goal's bound constant if any (workload root), else "c".
fn root_of(program: &Program) -> String {
    program
        .goal
        .args
        .iter()
        .find_map(|t| match t {
            Term::Const(c) => Some(program.symbols.const_name(*c).to_owned()),
            Term::Var(_) => None,
        })
        .unwrap_or_else(|| "c".to_owned())
}

/// Builds one of the workload-generator shapes, selected by `shape`.
fn build_db(program: &mut Program, shape: u8, n: usize, seed: u64) -> Database {
    let root = root_of(program);
    let names: Vec<String> = program
        .edb_predicates()
        .iter()
        .map(|&p| program.symbols.pred_name(p).to_owned())
        .collect();
    let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
    match shape % 4 {
        0 => workload::random_labeled_digraph(program, &name_refs, &root, n, 2 * n, seed),
        1 => workload::random_forest(program, name_refs[0], &root, n.max(2), seed),
        2 => workload::cycles(program, name_refs[0], &[3, n.max(1), n / 2 + 1]),
        _ => workload::wide(program, name_refs[0], &root, n / 2, 3, n / 3 + 1),
    }
}

/// Sorted `(pred, sorted tuples)` view of a Database, empty relations
/// dropped (stores track every relation they ever saw; from-scratch
/// evaluation only the ones of the program at hand).
fn nonempty_sorted(db: &Database) -> Vec<(Pred, Vec<Tuple>)> {
    db.sorted_models().into_iter().filter(|(_, rows)| !rows.is_empty()).collect()
}

/// A deterministic Fisher–Yates shuffle (xorshift64*), so "any
/// sequential order" is driven by the proptest seed.
fn shuffle<T>(items: &mut [T], mut seed: u64) {
    seed |= 1;
    for i in (1..items.len()).rev() {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        items.swap(i, (seed as usize) % (i + 1));
    }
}

/// One single-fact update operation of the shuffled sequential replay.
#[derive(Clone)]
enum Op {
    Insert(Pred, Tuple),
    Retract(Pred, Tuple),
}

/// Batched mixed round vs a seed-shuffled order of the equivalent
/// single-fact calls: identical stores, identical report counts, valid
/// justifications on both sides.
fn assert_batch_matches_sequential(
    program: &Program,
    db0: &Database,
    pool: &Database,
    order_seed: u64,
    strategy: Strategy,
) {
    // Inserts: pool facts genuinely absent from db0. Retracts: every
    // third stored fact. Disjoint by construction, so any interleaving
    // of the single-fact calls is equivalent to the batch.
    let mut inserts: Vec<(Pred, Tuple)> = Vec::new();
    for (pred, rel) in pool.iter() {
        for t in rel.sorted() {
            if !db0.relation(pred).is_some_and(|r| r.contains(&t)) {
                inserts.push((pred, t));
            }
        }
    }
    inserts.sort_by(|a, b| (a.0 .0, &a.1).cmp(&(b.0 .0, &b.1)));
    inserts.dedup_by(|a, b| a.0 == b.0 && a.1 == b.1);
    let mut retracts: Vec<(Pred, Tuple)> = Vec::new();
    {
        let mut all: Vec<(Pred, Vec<Tuple>)> = db0.iter().map(|(p, r)| (p, r.sorted())).collect();
        all.sort_by_key(|(p, _)| p.0);
        for (pred, tuples) in all {
            retracts.extend(tuples.into_iter().step_by(3).map(|t| (pred, t)));
        }
    }

    let mut round = UpdateRound::new();
    for (p, t) in &inserts {
        round = round.insert(*p, t.clone());
    }
    for (p, t) in &retracts {
        round = round.retract(*p, t.clone());
    }

    let mut batched = Materialization::from_database(program, db0, strategy);
    let report = batched.apply(&round);
    assert_eq!(report.inserted, inserts.len(), "every insert was novel");
    assert_eq!(report.retracted, retracts.len(), "every retract was stored");

    let mut ops: Vec<Op> = inserts
        .iter()
        .map(|(p, t)| Op::Insert(*p, t.clone()))
        .chain(retracts.iter().map(|(p, t)| Op::Retract(*p, t.clone())))
        .collect();
    shuffle(&mut ops, order_seed);
    let mut sequential = Materialization::from_database(program, db0, strategy);
    for op in &ops {
        match op {
            Op::Insert(p, t) => {
                assert_eq!(sequential.insert_facts(*p, std::slice::from_ref(t)), 1);
            }
            Op::Retract(p, t) => {
                assert_eq!(sequential.retract_facts(*p, std::slice::from_ref(t)), 1);
            }
        }
    }

    assert_eq!(
        batched.database().sorted_models(),
        sequential.database().sorted_models(),
        "one mixed round ≡ the shuffled single-fact sequence"
    );
    assert_eq!(batched.answer().sorted(), sequential.answer().sorted(), "goal answers");
    batched.provenance().check(program).expect("batched justifications valid");
    sequential.provenance().check(program).expect("sequential justifications valid");

    // The batch also matches the from-scratch model of the mutated db.
    let mut mirror = db0.clone();
    for (p, t) in &retracts {
        assert!(mirror.remove(*p, t));
    }
    for (p, t) in &inserts {
        mirror.insert(*p, t.clone());
    }
    let spec = reference::evaluate(program, &mirror, Strategy::SemiNaive);
    assert_eq!(
        nonempty_sorted(&batched.idb_database()),
        nonempty_sorted(&spec.idb),
        "batched round ≡ from-scratch on the mutated database"
    );
}

/// Rule hot-swap vs from-scratch: drop a random subset at fixpoint,
/// compare against the edited program; re-add, compare against the
/// original (and validate justifications across the whole swap).
fn assert_hot_swap_matches_reference(
    program: &Program,
    db: &Database,
    drop_mask: u32,
    strategy: Strategy,
) {
    let dropped: Vec<usize> = (0..program.rules.len())
        .filter(|i| drop_mask & (1 << (i % 32)) != 0)
        .collect();
    let mut m = Materialization::from_database(program, db, strategy);

    // Drop the subset in one round.
    let mut round = UpdateRound::new();
    for &i in &dropped {
        round = round.drop_rule(RuleId(i as u32));
    }
    let report = m.apply(&round);
    assert_eq!(report.rules_dropped, dropped.len());
    for &i in &dropped {
        assert!(!m.is_rule_active(RuleId(i as u32)));
    }

    // The edited program: same goal, surviving rules only.
    let mut p_minus = program.clone();
    p_minus.rules = program
        .rules
        .iter()
        .enumerate()
        .filter(|(i, _)| !dropped.contains(i))
        .map(|(_, r)| r.clone())
        .collect();
    let spec_minus = reference::evaluate(&p_minus, db, Strategy::SemiNaive);
    assert_eq!(
        nonempty_sorted(&m.idb_database()),
        nonempty_sorted(&spec_minus.idb),
        "after drops: incrementally maintained ≡ from-scratch on the edited program"
    );

    // Re-add the dropped rules (fresh slots, in original order).
    let mut p_check = program.clone(); // rule slots 0..n, re-adds appended
    for &i in &dropped {
        let id = m.add_rule(program.rules[i].clone());
        assert!(m.is_rule_active(id));
        p_check.rules.push(program.rules[i].clone());
    }
    let spec_full = reference::evaluate(program, db, Strategy::SemiNaive);
    assert_eq!(
        nonempty_sorted(&m.idb_database()),
        nonempty_sorted(&spec_full.idb),
        "after re-adds: the original model is restored"
    );
    let (spec_ans, _) = reference::answer(program, db, Strategy::SemiNaive);
    assert_eq!(m.answer().sorted(), spec_ans.sorted(), "goal answers restored");
    // Justifications may now name re-added slots; `p_check` lists every
    // slot ever allocated, in slot order.
    m.provenance().check(&p_check).expect("justifications valid across the swap");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn batched_round_matches_any_sequential_order_on_gallery(
        which in 0usize..10,
        shape in 0u8..4,
        n in 3usize..10,
        seed in 0u64..10_000,
        order_seed in 0u64..u64::MAX,
        strat in 0usize..4,
    ) {
        let strategy = [
            Strategy::SemiNaive,
            Strategy::SemiNaiveParallel { threads: 1 },
            Strategy::SemiNaiveParallel { threads: 2 },
            Strategy::SemiNaiveParallel { threads: 4 },
        ][strat];
        let entries = gallery();
        let entry = &entries[which % entries.len()];
        let mut program = entry.chain().program;
        let db0 = build_db(&mut program, shape, n, seed);
        let pool = build_db(&mut program, shape.wrapping_add(1), n, seed ^ 0x9e37);
        assert_batch_matches_sequential(&program, &db0, &pool, order_seed, strategy);
    }

    #[test]
    fn batched_round_matches_any_sequential_order_on_magic_programs(
        which in 0usize..10,
        n in 3usize..8,
        seed in 0u64..10_000,
        order_seed in 0u64..u64::MAX,
        strat in 0usize..3,
    ) {
        let strategy = [
            Strategy::SemiNaive,
            Strategy::SemiNaiveParallel { threads: 2 },
            Strategy::SemiNaiveParallel { threads: 4 },
        ][strat];
        let entries = gallery();
        let entry = &entries[which % entries.len()];
        let original = entry.chain().program;
        let Ok(magic) = selprop_datalog::magic::magic_transform(&original) else {
            return Ok(()); // diagonal goals reject magic; nothing to test
        };
        let mut program = magic.program;
        let db0 = build_db(&mut program, 0, n, seed);
        let pool = build_db(&mut program, 0, n, seed ^ 0x517c);
        assert_batch_matches_sequential(&program, &db0, &pool, order_seed, strategy);
    }

    #[test]
    fn rule_hot_swap_matches_from_scratch_on_gallery(
        which in 0usize..10,
        shape in 0u8..4,
        n in 3usize..10,
        seed in 0u64..10_000,
        drop_mask in 0u32..u32::MAX,
        strat in 0usize..3,
    ) {
        let strategy = [
            Strategy::SemiNaive,
            Strategy::SemiNaiveParallel { threads: 2 },
            Strategy::SemiNaiveParallel { threads: 4 },
        ][strat];
        let entries = gallery();
        let entry = &entries[which % entries.len()];
        let mut program = entry.chain().program;
        let db = build_db(&mut program, shape, n, seed);
        assert_hot_swap_matches_reference(&program, &db, drop_mask, strategy);
    }

    #[test]
    fn rule_hot_swap_matches_from_scratch_on_magic_programs(
        which in 0usize..10,
        n in 3usize..8,
        seed in 0u64..10_000,
        drop_mask in 0u32..u32::MAX,
    ) {
        // Magic-transformed programs stress 0-ary magic predicates and
        // empty-body seed rules under drop/re-add.
        let entries = gallery();
        let entry = &entries[which % entries.len()];
        let original = entry.chain().program;
        let Ok(magic) = selprop_datalog::magic::magic_transform(&original) else {
            return Ok(()); // diagonal goals reject magic; nothing to test
        };
        let mut program = magic.program;
        let db = build_db(&mut program, 0, n, seed);
        assert_hot_swap_matches_reference(&program, &db, drop_mask, Strategy::SemiNaive);
    }
}
