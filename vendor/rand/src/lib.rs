//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! micro-crate supplies the small slice of the `rand` 0.8 API the
//! workspace actually uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`]
//! and [`Rng::gen_range`] over integer ranges. The generator is a
//! SplitMix64 core — deterministic for a given seed, statistically fine
//! for workload generation, and explicitly **not** cryptographic.

/// Low-level entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators (subset: seeding from a single `u64`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (half-open or inclusive).
    ///
    /// Panics if the range is empty, like `rand` proper.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (self.next_u64() >> 11) as f64 / ((1u64 << 53) as f64) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Range types [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// The element type produced by sampling.
    type Output;
    /// Draws one uniform sample using `rng`.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                // Two's-complement wrapping keeps the span (and the final
                // add) correct for signed bounds and wide offsets alike.
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start.wrapping_add(reduce(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1) as u64;
                if span == 0 {
                    // full-width inclusive range of a 64-bit type
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add(reduce(rng.next_u64(), span) as $t)
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Maps a uniform `u64` into `0..span` without modulo bias mattering at
/// the spans this workspace uses (Lemire-style multiply-shift).
fn reduce(x: u64, span: u64) -> u64 {
    ((x as u128 * span as u128) >> 64) as u64
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The "standard" RNG: here a SplitMix64 stream.
    ///
    /// Deterministic per seed, so every workload generator in the
    /// reproduction is replayable.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014) — the same finalizer
            // rand itself uses to expand u64 seeds.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3u8..9);
            assert!((3..9).contains(&x));
            let y = rng.gen_range(0usize..=4);
            assert!(y <= 4);
        }
    }

    #[test]
    fn signed_and_full_width_ranges() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..1000 {
            let x = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&x));
            let y = rng.gen_range(-128i8..=127);
            assert!((-128..=127).contains(&y));
        }
        // full-width inclusive range of a 64-bit type must not panic
        let _ = rng.gen_range(u64::MIN..=u64::MAX);
        let _ = rng.gen_range(i64::MIN..=i64::MAX);
    }

    #[test]
    fn covers_the_whole_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 6];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
