//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no crates.io access, so this vendored
//! micro-crate supplies the slice of criterion's API the `selprop-bench`
//! harness uses: [`Criterion::benchmark_group`], group
//! `sample_size`/`bench_function`/`bench_with_input`/`finish`,
//! [`BenchmarkId::new`], [`Bencher::iter`] and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement is intentionally simple: each benchmark is warmed up
//! once, then timed for `sample_size` batches, and the per-iteration
//! mean / min are printed. No statistics, plots, or baselines — the
//! machine-independent work counters printed by the benches themselves
//! (see `EXPERIMENTS.md`) are the numbers the reproduction records.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion-style.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group: a function name plus a
/// parameter rendered into the id (`name/param`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Builds an id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    samples: usize,
    /// Mean and min per-iteration time of the last `iter` call.
    result: Option<(Duration, Duration)>,
}

impl Bencher {
    /// Calls `f` repeatedly and records wall-clock statistics.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        let mut done = 0usize;
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            let dt = start.elapsed();
            total += dt;
            min = min.min(dt);
            done += 1;
            // Bound total harness time per benchmark.
            if total > Duration::from_millis(500) {
                break;
            }
        }
        self.result = Some((total / done as u32, min));
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    fn run_one(&mut self, id: &str, run: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            samples: self.sample_size.max(1),
            result: None,
        };
        run(&mut b);
        match b.result {
            Some((mean, min)) => println!(
                "bench {}/{id}: mean {} (min {})",
                self.name,
                fmt_duration(mean),
                fmt_duration(min)
            ),
            None => println!("bench {}/{id}: no measurement", self.name),
        }
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run_one(&id.id, |b| f(b));
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        self.run_one(&id.id, |b| f(b, input));
        self
    }

    /// Ends the group (printing is incremental, so this is a no-op).
    pub fn finish(self) {}
}

/// The harness entry point handed to every bench function.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        self
    }
}

/// Declares a group-runner function from bench functions, like
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` from one or more [`criterion_group!`] names.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
