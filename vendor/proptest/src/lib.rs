//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendored
//! micro-crate reimplements the subset of proptest's API that the
//! workspace's property tests use:
//!
//! - the [`strategy::Strategy`] trait with `prop_map`,
//!   `prop_recursive` and `boxed`;
//! - integer-range, tuple, [`strategy::Just`], [`bool::ANY`] and
//!   [`collection::vec()`] strategies;
//! - the [`proptest!`] macro (with `#![proptest_config(..)]` headers),
//!   [`prop_oneof!`], and the `prop_assert*` macro family;
//! - [`test_runner::TestCaseError`] / `ProptestConfig::with_cases`.
//!
//! Semantics differ from real proptest in one deliberate way: cases are
//! generated from a deterministic per-test RNG (seeded from the test
//! name) and failures are reported without shrinking. That keeps runs
//! reproducible and dependency-free at the cost of less-minimal
//! counterexamples.

pub mod strategy;

pub mod collection;

pub mod test_runner;

/// Boolean strategies, mirroring `proptest::bool`.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy type producing uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniformly random booleans (`proptest::bool::ANY`).
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn new_value(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// The usual `use proptest::prelude::*;` surface.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Runs a block of property tests.
///
/// Supports the shape used throughout this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///
///     #[test]
///     fn prop(x in 0u8..5, v in proptest::collection::vec(0u8..2, 1..4)) {
///         prop_assert!(x < 5);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($config:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err(e) => {
                            panic!("proptest case {}/{} failed: {}", case + 1, config.cases, e)
                        }
                    }
                }
            }
        )*
    };
}

/// Chooses uniformly among several strategies for the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// `assert!` that fails the current property case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// `assert_eq!` that fails the current property case instead of panicking.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} == {:?}: {}", l, r, format!($($fmt)*)
        );
    }};
}

/// `assert_ne!` that fails the current property case instead of panicking.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {:?} != {:?}: {}", l, r, format!($($fmt)*)
        );
    }};
}
