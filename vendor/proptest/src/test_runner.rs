//! Runner support: the per-test RNG, configuration, and case errors.

use std::fmt;

/// Deterministic RNG driving case generation (SplitMix64 core).
///
/// Each `proptest!` test gets a stream seeded from its own name, so
/// failures reproduce exactly across runs and machines.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds a stream from a test name (FNV-1a over the bytes).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform sample from `0..span` (`span` must be non-zero).
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }
}

/// Runner configuration (`ProptestConfig` in the prelude).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case failed an assertion (fails the whole property).
    Fail(String),
    /// The case was rejected as invalid input (skipped, not a failure).
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// A rejection (the runner skips the case).
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "{r}"),
            TestCaseError::Reject(r) => write!(f, "rejected: {r}"),
        }
    }
}
