//! Value-generation strategies: the trait, the combinators, and the
//! primitive instances (integer ranges, tuples, [`Just`]).

use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

use crate::test_runner::TestRng;

/// A recipe for generating random values of one type.
///
/// Unlike real proptest there is no value tree and no shrinking: a
/// strategy is just a deterministic function of the runner's RNG state.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Returns a strategy producing `f(v)` for each generated `v`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `recurse` receives a strategy for
    /// the "smaller" cases and returns the composite case. `depth`
    /// bounds the nesting; the size/branch hints of real proptest are
    /// accepted for compatibility but unused.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            // Mix leaves back in at every level so generated values vary
            // in size instead of always being full-depth trees.
            let inner = Union::new(vec![leaf.clone(), current.clone()]).boxed();
            current = recurse(inner).boxed();
        }
        Union::new(vec![leaf, current]).boxed()
    }

    /// Erases the strategy's concrete type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        self.0.new_value(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Uniform choice among several strategies of one value type; the
/// strategy behind [`prop_oneof!`](crate::prop_oneof).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].new_value(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                // Two's-complement wrapping keeps the span (and the final
                // add) correct for signed bounds and wide offsets alike.
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1) as u64;
                if span == 0 {
                    // full-width inclusive range of a 64-bit type
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+);)*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, F);
}
