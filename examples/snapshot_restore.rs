//! Durable, bounded-memory materializations: churn a live fixpoint,
//! watch compaction reclaim the tombstones, save a checksummed snapshot
//! atomically, simulate a crash mid-save, and restart the server from
//! the last intact snapshot at the persisted epoch — no re-evaluation.
//!
//! ```bash
//! cargo run --example snapshot_restore
//! ```
//!
//! The walkthrough doubles as a smoke test of the durability contract:
//!
//! - **bounded memory** — after heavy insert/retract churn with a
//!   compaction policy set, the store holds live rows only;
//! - **crash safety** — a torn temp file from an interrupted save is
//!   rejected cleanly, while the previously completed snapshot restores
//!   bit-for-bit;
//! - **restart at fixpoint** — the restored server answers identically,
//!   resumes rounds at the persisted epoch, and keeps accepting updates.

use selprop_datalog::db::Tuple;
use selprop_datalog::eval::Strategy;
use selprop_datalog::{
    parse_program, CompactionPolicy, Materialization, Server, UpdateRound,
};

fn main() {
    let mut p = parse_program(
        "?- anc(john, Y).\n\
         anc(X, Y) :- par(X, Y).\n\
         anc(X, Y) :- anc(X, Z), par(Z, Y).",
    )
    .expect("valid program");
    let par = p.symbols.get_predicate("par").unwrap();

    // A 32-edge parent chain rooted at john.
    let mut prev = p.symbols.constant("john");
    let edges: Vec<Tuple> = (1..=32)
        .map(|i| {
            let c = p.symbols.constant(&format!("c{i}"));
            let t = vec![prev, c];
            prev = c;
            t
        })
        .collect();

    let server = Server::new(&p, Strategy::SemiNaive);
    server.insert_facts(par, &edges);
    server.set_compaction_policy(Some(CompactionPolicy {
        min_dead_rows: 16,
        dead_percent: 20,
    }));

    // Churn: every round retracts one edge and restores it. Each
    // retract kills the closure span above the edge; without compaction
    // the tombstoned rows would accumulate forever.
    for i in 0..200 {
        let victim = 31 - (i % 4);
        server.apply(
            &UpdateRound::new()
                .retract(par, edges[victim].clone())
                .insert(par, edges[victim].clone()),
        );
    }
    let ms = server.mem_stats();
    println!(
        "after 200 churn rounds: {} live rows / {} stored rows, {} compactions",
        ms.live_rows,
        ms.total_rows,
        server.compactions()
    );
    assert!(
        server.compactions() > 0,
        "the policy should have compacted under this churn"
    );
    assert!(
        ms.total_rows < 2 * ms.live_rows,
        "compaction should keep dead rows bounded ({} of {})",
        ms.total_rows - ms.live_rows,
        ms.total_rows
    );
    let answer_before = server.snapshot().answer().sorted();

    // Save: versioned, length-prefixed, checksummed, written atomically
    // (temp file + rename) so a crash never tears the snapshot.
    let dir = std::env::temp_dir().join(format!("selprop-example-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("store.snap");
    server.save(&path).expect("snapshot save");
    let epoch_saved = server.current_epoch();
    println!(
        "saved {} bytes at epoch {epoch_saved}",
        std::fs::metadata(&path).expect("snapshot written").len()
    );

    // Simulate a crash during a *later* save: the temp file holds a
    // torn prefix and the rename never happened.
    server.apply(&UpdateRound::new().retract(par, edges[31].clone()));
    let torn = std::fs::read(&path).expect("read snapshot");
    std::fs::write(dir.join("store.snap.tmp"), &torn[..torn.len() / 2]).expect("torn tmp");

    // The torn temp file never restores silently...
    let err = Materialization::restore(dir.join("store.snap.tmp"))
        .err()
        .expect("a torn snapshot must be rejected");
    println!("torn temp file rejected: {err}");

    // ...while the completed snapshot restores the server at its
    // persisted epoch and fixpoint — no re-evaluation.
    let restored = Server::restore(&path).expect("restore from the intact snapshot");
    assert_eq!(restored.current_epoch(), epoch_saved, "rounds resume at the persisted epoch");
    assert_eq!(
        restored.snapshot().answer().sorted(),
        answer_before,
        "the restored fixpoint answers identically"
    );

    // The restored server is fully live: apply the same round to both
    // and they stay equivalent.
    let round = UpdateRound::new().retract(par, edges[30].clone());
    server.insert_facts(par, &edges[31..32]); // undo the post-save edit first
    server.apply(&round);
    restored.apply(&round);
    assert_eq!(
        server.snapshot().answer().sorted(),
        restored.snapshot().answer().sorted(),
        "original and restored servers stay equivalent under updates"
    );
    println!(
        "restarted at epoch {epoch_saved}: answers match, updates keep flowing"
    );

    std::fs::remove_dir_all(&dir).ok();
}
