//! Section 7 worked example: magic sets on the `b1^n b2^n` chain program
//! read as language quotients.
//!
//! ```bash
//! cargo run --example magic_sets
//! ```

use selprop_core::chain::ChainProgram;
use selprop_core::magic_chain::{analyze, magic_extension_vs_language, transform, work_comparison};
use selprop_core::workload;
use selprop_automata::regex::{dfa_to_regex, Regex};

fn main() {
    let mut chain = ChainProgram::parse(
        "?- p(c, Y).\n\
         p(X, Y) :- b1(X, X1), b2(X1, Y).\n\
         p(X, Y) :- b1(X, X1), p(X1, Y1), b2(Y1, Y).",
    )
    .unwrap();
    println!("Chain program H with L(H) = {{ b1^n b2^n : n ≥ 1 }}:\n");
    println!("{}", chain.program.render());

    let analysis = analyze(&chain).unwrap();
    let al = chain.grammar().alphabet.clone();
    println!(
        "Regular envelope R(H): {}   (exact: {})",
        dfa_to_regex(&analysis.envelope).display(&al),
        analysis.envelope_exact,
    );
    for rq in &analysis.rules {
        println!(
            "rule {}: pattern {} → envelope quotient {}  (CFG quotient exact-regular: {})",
            rq.rule_index,
            rq.pattern.display(&al),
            dfa_to_regex(&rq.envelope_quotient).display(&al),
            rq.quotient_exact,
        );
    }

    println!("\nTransformed program (paper's Section 7 display):\n");
    let magic = transform(&chain).unwrap();
    println!("{}", magic.program.render());

    // Validate the semantic reading: magic = b1*-reachability from c.
    let db = workload::layered_b1_b2(&mut chain.program, "c", 30, 100);
    let mut al2 = al.clone();
    let b1_star = Regex::parse("b1*", &mut al2).unwrap().to_dfa(&al2);
    let (marked, reachable) = magic_extension_vs_language(&chain, &db, &b1_star).unwrap();
    assert_eq!(marked, reachable);
    println!(
        "On a 30-layer database with 100 noise pairs: magic set = b1*-reachable \
         set = {} nodes ✓",
        marked.len()
    );

    let (orig, magical) = work_comparison(&chain, &db).unwrap();
    println!(
        "work: original = {} (tuples {}), magic = {} (tuples {})",
        orig.work(),
        orig.tuples_derived,
        magical.work(),
        magical.tuples_derived
    );
}
