//! WS1S exploration: compile formulas to DFAs, and run the Lemma 5.1
//! encoding on monadic Datalog programs to extract the regular language
//! they define on labeled lines.
//!
//! ```bash
//! cargo run --example ws1s_explorer
//! ```

use selprop_automata::regex::dfa_to_regex;
use selprop_datalog::parser::parse_program;
use selprop_ws1s::compile::compile;
use selprop_ws1s::encode::{encode_monadic_program, extract_language};
use selprop_ws1s::syntax::{Formula, VarAllocator};

fn main() {
    println!("— Part 1: formulas to automata (Büchi–Elgot–Trakhtenbrot) —\n");
    let mut va = VarAllocator::new();
    let w = va.fresh("W");
    let x = va.fresh("x");
    let y = va.fresh("y");

    let formulas: Vec<(&str, Formula)> = vec![
        (
            "∃x (x ∈ W)                      [W nonempty]",
            Formula::exists_fo(x, Formula::In(x, w)),
        ),
        (
            "∀x (x ∈ W)                      [W is everything]",
            Formula::forall_fo(x, Formula::In(x, w)),
        ),
        (
            "∀x∀y (succ(x,y) ⇒ (x∈W ⇔ y∉W))  [W alternates]",
            Formula::forall_fo(
                x,
                Formula::forall_fo(
                    y,
                    Formula::implies(
                        Formula::Succ(x, y),
                        Formula::iff(Formula::In(x, w), Formula::not(Formula::In(y, w))),
                    ),
                ),
            ),
        ),
        (
            "∀W ∃x (x ∈ W)                   [false: take W = ∅]",
            Formula::forall_so(w, Formula::exists_fo(x, Formula::In(x, w))),
        ),
    ];
    for (label, f) in formulas {
        let compiled = compile(&f, 3, &[]);
        println!(
            "{label}\n    → minimal DFA: {} states, empty: {}",
            compiled.dfa.num_states(),
            compiled.dfa.is_empty()
        );
    }

    println!("\n— Part 2: Lemma 5.1 — monadic programs define regular languages —\n");
    let programs = [
        (
            "Program D (Example 1.1)",
            "?- ancjohn(Y).\n\
             ancjohn(Y) :- par(john, Y).\n\
             ancjohn(Y) :- ancjohn(Z), par(Z, Y).",
            "john",
        ),
        (
            "two-state alternation",
            "?- q2(Y).\n\
             q1(Y) :- b1(c, Y).\n\
             q1(Y) :- q2(Z), b1(Z, Y).\n\
             q2(Y) :- q1(Z), b2(Z, Y).",
            "c",
        ),
    ];
    for (label, src, origin) in programs {
        let h = parse_program(src).unwrap();
        let enc = encode_monadic_program(&h, origin).unwrap();
        let lang = extract_language(&enc);
        println!(
            "{label}:\n    language on labeled lines = {}",
            dfa_to_regex(&lang).display(&enc.alphabet)
        );
    }
    println!(
        "\nWhatever monadic program you write, Part 2 will print a regular \
         expression — that is Lemma 5.1, and with it Theorem 3.3(1) 'only if'."
    );
}
