//! Live updates: a persistent materialization absorbing a stream of
//! edge inserts — and a retraction — without ever recomputing.
//!
//! ```bash
//! cargo run --example live_updates
//! ```
//!
//! The batch evaluator (`selprop::datalog::eval::evaluate`) recomputes
//! the least fixpoint from scratch on every call; a live workload that
//! trickles in facts wants the fixpoint to be a *value* that updates
//! resume from. That is `Materialization`: build once, then
//! `insert_facts` makes the new rows the next semi-naive delta, and
//! `retract_facts` removes facts by delete–rederive over the recorded
//! justifications.

use std::time::Instant;

use selprop_datalog::db::Tuple;
use selprop_datalog::eval::{evaluate, Strategy};
use selprop_datalog::{parse_program, Database, Materialization};

fn main() {
    // The classic ancestor program (Example 1.1's Program A).
    let mut p = parse_program(
        "?- anc(john, Y).\n\
         anc(X, Y) :- par(X, Y).\n\
         anc(X, Y) :- anc(X, Z), par(Z, Y).",
    )
    .expect("valid program");
    let par = p.symbols.get_predicate("par").unwrap();

    // A binary tree of parent edges as the initial bulk load.
    let mut db = Database::new();
    let nodes: Vec<_> = (0..512)
        .map(|i| {
            if i == 0 {
                p.symbols.constant("john")
            } else {
                p.symbols.constant(&format!("p{i}"))
            }
        })
        .collect();
    for i in 1..nodes.len() {
        db.insert(par, vec![nodes[(i - 1) / 2], nodes[i]]);
    }

    let t0 = Instant::now();
    let mut m = Materialization::from_database(&p, &db, Strategy::SemiNaive);
    println!(
        "bulk load: {} edges -> {} descendants of john in {:.2?}",
        db.num_facts(),
        m.answer().len(),
        t0.elapsed()
    );

    // A stream of updates: new family branches arriving one at a time.
    let mut stream: Vec<Tuple> = Vec::new();
    let mut prev = nodes[300];
    for i in 0..64 {
        let c = p.symbols.constant(&format!("new{i}"));
        stream.push(vec![prev, c]);
        prev = c;
    }
    let t0 = Instant::now();
    for edge in &stream {
        m.insert_facts(par, std::slice::from_ref(edge));
    }
    let elapsed = t0.elapsed();
    println!(
        "absorbed {} live edge inserts in {:.2?} ({:.0?} per update); answers now {}",
        stream.len(),
        elapsed,
        elapsed / stream.len() as u32,
        m.answer().len()
    );

    // The incremental model is exactly the from-scratch model.
    let mut db_now = db.clone();
    for edge in &stream {
        db_now.insert(par, edge.clone());
    }
    let scratch = evaluate(&p, &db_now, Strategy::SemiNaive);
    let anc = p.symbols.get_predicate("anc").unwrap();
    assert_eq!(
        m.idb_database().relation(anc).map(|r| r.sorted()),
        scratch.idb.relation(anc).map(|r| r.sorted()),
        "incremental maintenance must equal recomputation"
    );
    println!("cross-check vs from-scratch recompute: identical model");

    // Retract the whole new branch: delete-rederive restores the
    // pre-stream store.
    let t0 = Instant::now();
    let removed = m.retract_facts(par, &stream);
    println!(
        "retracted {} edges in {:.2?}; answers back to {}",
        removed,
        t0.elapsed(),
        m.answer().len()
    );
    let base = evaluate(&p, &db, Strategy::SemiNaive);
    assert_eq!(
        m.idb_database().relation(anc).map(|r| r.sorted()),
        base.idb.relation(anc).map(|r| r.sorted()),
        "retraction must restore the pre-insert model"
    );
    println!("cross-check vs pre-insert model: restored bit-for-bit");
}
