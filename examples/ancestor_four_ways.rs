//! Example 1.1 of the paper, end to end: the four ancestor programs
//! A, B, C, D are semantically equivalent but cost wildly different
//! amounts to evaluate; magic sets close most of the gap for A and B.
//!
//! ```bash
//! cargo run --example ancestor_four_ways
//! ```

use selprop_datalog::db::Database;
use selprop_datalog::eval::{answer, Strategy};
use selprop_datalog::magic::magic_transform;
use selprop_datalog::parser::parse_program;
use selprop_core::workload;

const PROGRAMS: [(&str, &str); 4] = [
    (
        "A (left-linear)",
        "?- anc(john, Y).\n\
         anc(X, Y) :- par(X, Y).\n\
         anc(X, Y) :- anc(X, Z), par(Z, Y).",
    ),
    (
        "B (right-linear)",
        "?- anc(john, Y).\n\
         anc(X, Y) :- par(X, Y).\n\
         anc(X, Y) :- par(X, Z), anc(Z, Y).",
    ),
    (
        "C (nonlinear)",
        "?- anc(john, Y).\n\
         anc(X, Y) :- par(X, Y).\n\
         anc(X, Y) :- anc(X, Z), anc(Z, Y).",
    ),
    (
        "D (monadic)",
        "?- ancjohn(Y).\n\
         ancjohn(Y) :- par(john, Y).\n\
         ancjohn(Y) :- ancjohn(Z), par(Z, Y).",
    ),
];

fn main() {
    let n = 400;
    println!(
        "Example 1.1 — four equivalent ancestor programs on a random forest \
         ({n} nodes) plus disconnected noise\n"
    );
    println!(
        "{:<18} {:>9} {:>12} {:>12} {:>12}",
        "program", "answers", "tuples", "work", "iterations"
    );

    let mut reference: Option<usize> = None;
    for (name, src) in PROGRAMS {
        let mut program = parse_program(src).unwrap();
        let mut db = workload::random_forest(&mut program, "par", "john", n, 11);
        // noise: chains not reachable from john
        let noise = workload::wide(&mut program, "par", "elsewhere", 0, 20, 10);
        merge(&mut db, &noise);
        let (ans, stats) = answer(&program, &db, Strategy::SemiNaive);
        match reference {
            None => reference = Some(ans.len()),
            Some(r) => assert_eq!(r, ans.len(), "Example 1.1 equivalence"),
        }
        println!(
            "{:<18} {:>9} {:>12} {:>12} {:>12}",
            name,
            ans.len(),
            stats.tuples_derived,
            stats.work(),
            stats.iterations
        );
    }

    println!("\nWith the magic-sets transformation applied:\n");
    println!("{:<18} {:>9} {:>12} {:>12}", "program", "answers", "tuples", "work");
    for (name, src) in &PROGRAMS[..3] {
        let mut program = parse_program(src).unwrap();
        let mut db = workload::random_forest(&mut program, "par", "john", n, 11);
        let noise = workload::wide(&mut program, "par", "elsewhere", 0, 20, 10);
        merge(&mut db, &noise);
        let magic = magic_transform(&program).unwrap();
        let (ans, stats) = answer(&magic.program, &db, Strategy::SemiNaive);
        println!(
            "{:<18} {:>9} {:>12} {:>12}",
            format!("magic({})", name.chars().next().unwrap()),
            ans.len(),
            stats.tuples_derived,
            stats.work()
        );
        let _ = name;
    }
    println!(
        "\nReading: D is the efficient monadic form; magic(A)/magic(B) restrict \
         the computation to (roughly) what D does; magic helps C far less — \
         exactly the paper's Section 1 narrative."
    );
}

fn merge(into: &mut Database, from: &Database) {
    for (p, rel) in from.iter() {
        for t in rel.iter() {
            into.insert(p, t.clone());
        }
    }
}
