//! Example 1.1 of the paper, end to end: the four ancestor programs
//! A, B, C, D are semantically equivalent but cost wildly different
//! amounts to evaluate; magic sets close most of the gap for A and B.
//!
//! ```bash
//! cargo run --example ancestor_four_ways
//! ```

use selprop_datalog::db::Database;
use selprop_datalog::eval::{answer, evaluate_with_provenance, Strategy};
use selprop_datalog::magic::magic_transform;
use selprop_datalog::parser::parse_program;
use selprop_core::workload;

const PROGRAMS: [(&str, &str); 4] = [
    (
        "A (left-linear)",
        "?- anc(john, Y).\n\
         anc(X, Y) :- par(X, Y).\n\
         anc(X, Y) :- anc(X, Z), par(Z, Y).",
    ),
    (
        "B (right-linear)",
        "?- anc(john, Y).\n\
         anc(X, Y) :- par(X, Y).\n\
         anc(X, Y) :- par(X, Z), anc(Z, Y).",
    ),
    (
        "C (nonlinear)",
        "?- anc(john, Y).\n\
         anc(X, Y) :- par(X, Y).\n\
         anc(X, Y) :- anc(X, Z), anc(Z, Y).",
    ),
    (
        "D (monadic)",
        "?- ancjohn(Y).\n\
         ancjohn(Y) :- par(john, Y).\n\
         ancjohn(Y) :- ancjohn(Z), par(Z, Y).",
    ),
];

fn main() {
    let n = 400;
    println!(
        "Example 1.1 — four equivalent ancestor programs on a random forest \
         ({n} nodes) plus disconnected noise\n"
    );
    println!(
        "{:<18} {:>9} {:>12} {:>12} {:>12}",
        "program", "answers", "tuples", "work", "iterations"
    );

    let mut reference: Option<usize> = None;
    for (name, src) in PROGRAMS {
        let mut program = parse_program(src).unwrap();
        let mut db = workload::random_forest(&mut program, "par", "john", n, 11);
        // noise: chains not reachable from john
        let noise = workload::wide(&mut program, "par", "elsewhere", 0, 20, 10);
        merge(&mut db, &noise);
        let (ans, stats) = answer(&program, &db, Strategy::SemiNaive);
        match reference {
            None => reference = Some(ans.len()),
            Some(r) => assert_eq!(r, ans.len(), "Example 1.1 equivalence"),
        }
        println!(
            "{:<18} {:>9} {:>12} {:>12} {:>12}",
            name,
            ans.len(),
            stats.tuples_derived,
            stats.work(),
            stats.iterations
        );
    }

    println!("\nWith the magic-sets transformation applied:\n");
    println!("{:<18} {:>9} {:>12} {:>12}", "program", "answers", "tuples", "work");
    for (name, src) in &PROGRAMS[..3] {
        let mut program = parse_program(src).unwrap();
        let mut db = workload::random_forest(&mut program, "par", "john", n, 11);
        let noise = workload::wide(&mut program, "par", "elsewhere", 0, 20, 10);
        merge(&mut db, &noise);
        let magic = magic_transform(&program).unwrap();
        let (ans, stats) = answer(&magic.program, &db, Strategy::SemiNaive);
        println!(
            "{:<18} {:>9} {:>12} {:>12}",
            format!("magic({})", name.chars().next().unwrap()),
            ans.len(),
            stats.tuples_derived,
            stats.work()
        );
        let _ = name;
    }
    println!(
        "\nReading: D is the efficient monadic form; magic(A)/magic(B) restrict \
         the computation to (roughly) what D does; magic helps C far less — \
         exactly the paper's Section 1 narrative."
    );

    // Section 2.1 made executable: the engine can record one
    // justification per derived fact while it evaluates, at identical
    // work counts, and reconstruct the derivation trees afterwards.
    println!("\nProvenance (program A, same database):\n");
    let mut program = parse_program(PROGRAMS[0].1).unwrap();
    let mut db = workload::random_forest(&mut program, "par", "john", n, 11);
    let noise = workload::wide(&mut program, "par", "elsewhere", 0, 20, 10);
    merge(&mut db, &noise);
    let (_, plain_stats) = answer(&program, &db, Strategy::SemiNaive);
    let result = evaluate_with_provenance(&program, &db, Strategy::SemiNaive);
    assert_eq!(
        result.stats, plain_stats,
        "recording justifications changes no work counter"
    );
    let prov = result.provenance;
    let anc = program.symbols.get_predicate("anc").unwrap();
    let heights = prov.heights(anc);
    let max_h = heights.iter().copied().max().unwrap_or(0);
    println!(
        "derived facts: {} (one justification each), max derivation-tree height: {max_h}",
        prov.num_derived()
    );
    // `heights` is in row order = `derived()` order (anc is the only
    // IDB), so the deepest proof is an index lookup, not a rescan.
    let deepest_row = heights
        .iter()
        .position(|&h| h == max_h)
        .expect("nonempty model");
    let deepest = prov.derived().nth(deepest_row).expect("row exists");
    let tree = prov.tree(&deepest).expect("derived fact has a tree");
    println!(
        "deepest proof: {}({}, {}) — tree height {} with {} nodes, all leaves par facts",
        program.symbols.pred_name(deepest.pred),
        program.symbols.const_name(deepest.args[0]),
        program.symbols.const_name(deepest.args[1]),
        tree.height(),
        tree.size(),
    );
    let (rule, body) = prov.justification(&deepest).expect("derived");
    println!(
        "its last step: rule {rule} over {} body fact(s) — e.g. {}({}, {})",
        body.len(),
        program.symbols.pred_name(body[0].pred),
        program.symbols.const_name(body[0].args[0]),
        program.symbols.const_name(body[0].args[1]),
    );
}

fn merge(into: &mut Database, from: &Database) {
    for (p, rel) in from.iter() {
        for t in rel.iter() {
            into.insert(p, t.clone());
        }
    }
}
