//! Quickstart: propagate the selection `anc(john, Y)` into the classic
//! ancestor program and run both versions on a small family tree.
//!
//! ```bash
//! cargo run --example quickstart
//! ```

use selprop_core::chain::ChainProgram;
use selprop_core::propagate::{propagate, Propagation};
use selprop_core::workload;
use selprop_datalog::eval::{answer, Strategy};

fn main() {
    // Program A from Example 1.1 of the paper.
    let chain = ChainProgram::parse(
        "?- anc(john, Y).\n\
         anc(X, Y) :- par(X, Y).\n\
         anc(X, Y) :- anc(X, Z), par(Z, Y).",
    )
    .expect("valid chain program");

    println!("== Original (binary recursive) program ==");
    println!("{}", chain.program.render());

    // The propagation engine establishes that L(H) = par+ is regular
    // (strongly regular grammar) and builds the monadic rewrite — the
    // paper's Program D, up to state naming.
    let Propagation::Propagated {
        program: monadic,
        certificate,
    } = propagate(&chain).expect("constant goal")
    else {
        unreachable!("ancestors always propagate");
    };
    println!("== Monadic rewrite (certificate: {}) ==", certificate.describe());
    println!("{}", monadic.render());

    // Evaluate both on a random family forest and compare work.
    let mut original = chain.program.clone();
    let db1 = workload::random_forest(&mut original, "par", "john", 2_000, 7);
    let (ans1, stats1) = answer(&original, &db1, Strategy::SemiNaive);

    let mut rewritten = monadic.clone();
    let db2 = workload::random_forest(&mut rewritten, "par", "john", 2_000, 7);
    let (ans2, stats2) = answer(&rewritten, &db2, Strategy::SemiNaive);

    assert_eq!(ans1.len(), ans2.len(), "finite query equivalence");
    println!("answers: {} descendants of john", ans1.len());
    println!(
        "work (rule firings + join probes): binary = {}, monadic = {}  ({}x less)",
        stats1.work(),
        stats2.work(),
        stats1.work() / stats2.work().max(1)
    );
}
