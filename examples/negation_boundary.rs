//! The negation boundary of Section 6: pure monadic Datalog is blind to
//! cycles (Lemma 6.1), but Example 6.3's monadic *fixpoint with
//! negation* expresses cyclicity.
//!
//! ```bash
//! cargo run --example negation_boundary
//! ```

use selprop_mgs::fixpoint::{example_6_3, has_cycle_via_fixpoint};
use selprop_mgs::structure::FiniteStructure;
use selprop_mgs::symmetry::{distinguishes, monadic_probe_programs};

fn main() {
    let n = 10;
    let path = FiniteStructure::path(n, "b");
    let with_cycle = path.disjoint_union(&FiniteStructure::cycle(n / 2, "b"));

    println!("Structures: P_{n} (a path) vs P_{n} ⊎ C_{} (path + cycle)\n", n / 2);

    println!("— Pure monadic Datalog probes (Lemma 6.1: must be blind) —");
    for (i, probe) in monadic_probe_programs().iter().enumerate() {
        let d = distinguishes(probe, &path, &with_cycle);
        println!("  probe {i}: distinguishes = {d}");
        assert!(!d, "Lemma 6.1 violated");
    }

    println!("\n— Example 6.3: monadic fixpoint WITH negation —");
    println!("  rule: w(X) :- w(X) ∨ ∀Y (b(X,Y) ⇒ w(Y))");
    let fp = example_6_3();
    for (name, s) in [("P_10", &path), ("P_10 ⊎ C_5", &with_cycle)] {
        let (marked, iters) = fp.evaluate(s);
        println!(
            "  {name}: {} of {} nodes marked acyclic in {iters} iterations → has_cycle = {}",
            marked.len(),
            s.domain,
            has_cycle_via_fixpoint(s)
        );
    }
    assert!(!has_cycle_via_fixpoint(&path));
    assert!(has_cycle_via_fixpoint(&with_cycle));

    println!(
        "\nThe same monadic arity, one negation-bearing universal body — and \
         the cycle blindness of Lemma 6.1 is gone. This is why Theorem 3.3's \
         lower bound technique (Section 6) does not extend to monadic fixpoint \
         logic with negation, while the WS1S technique (Corollary 5.4) does."
    );
}
