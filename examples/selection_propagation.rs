//! The decision pipeline (Theorem 3.3 / Corollary 3.4) on a gallery of
//! chain programs: regular, finite, non-regular and grammar-obscured
//! languages, under both constant and diagonal selections.
//!
//! ```bash
//! cargo run --example selection_propagation
//! ```

use selprop_core::chain::ChainProgram;
use selprop_core::propagate::{propagate, Propagation};

const GALLERY: [(&str, &str); 7] = [
    (
        "par+ via left-linear rules, goal anc(c, Y)",
        "?- anc(c, Y).\nanc(X, Y) :- par(X, Y).\nanc(X, Y) :- anc(X, Z), par(Z, Y).",
    ),
    (
        "par+ via right-linear rules, goal anc(X, c)",
        "?- anc(X, c).\nanc(X, Y) :- par(X, Y).\nanc(X, Y) :- par(X, Z), anc(Z, Y).",
    ),
    (
        "par+ via nonlinear rules (grammar hides regularity)",
        "?- anc(c, Y).\nanc(X, Y) :- par(X, Y).\nanc(X, Y) :- anc(X, Z), anc(Z, Y).",
    ),
    (
        "finite {b1, b1 b2}, goal p(c, Y)",
        "?- p(c, Y).\np(X, Y) :- b1(X, Y).\np(X, Y) :- b1(X, Z), b2(Z, Y).",
    ),
    (
        "b1^n b2^n (not regular), goal p(c, Y)",
        "?- p(c, Y).\np(X, Y) :- b1(X, X1), b2(X1, Y).\np(X, Y) :- b1(X, X1), p(X1, X2), b2(X2, Y).",
    ),
    (
        "finite {b, bb}, diagonal goal p(X, X)",
        "?- p(X, X).\np(X, Y) :- b(X, Y).\np(X, Y) :- b(X, Z), b(Z, Y).",
    ),
    (
        "b+ (Program CYCLE), diagonal goal p(X, X)",
        "?- p(X, X).\np(X, Y) :- b(X, Y).\np(X, Y) :- p(X, Z), b(Z, Y).",
    ),
];

fn main() {
    for (label, src) in GALLERY {
        let chain = ChainProgram::parse(src).expect("gallery programs are chain programs");
        println!("─── {label}");
        println!("    goal form: {:?}", chain.goal_form);
        match propagate(&chain).expect("selection goal") {
            Propagation::Propagated {
                program,
                certificate,
            } => {
                println!("    PROPAGATED — {}", certificate.describe());
                let idbs = program.idb_predicates().len();
                println!(
                    "    monadic rewrite: {} rules, {} monadic IDB(s)",
                    program.rules.len(),
                    idbs
                );
            }
            Propagation::Impossible { pump } => {
                println!(
                    "    IMPOSSIBLE — L(H) is infinite; pumping at nonterminal '{}'",
                    pump.nonterminal
                );
                let g = chain.grammar();
                let show = |w: &[selprop_automata::Symbol]| g.alphabet.render_word(w);
                println!(
                    "    witness family: {} / {} / {} ...",
                    show(&pump.word(0)),
                    show(&pump.word(1)),
                    show(&pump.word(2)),
                );
            }
            Propagation::Unknown(ev) => {
                println!("    UNKNOWN — the undecidable region (Corollary 3.4)");
                if let Some(nt) = &ev.self_embedding_nonterminal {
                    println!("    grammar self-embeds at '{nt}'");
                }
                println!(
                    "    envelope R(H): {} states; tight on sample: {}; Nerode lower bound: {}",
                    ev.envelope.num_states(),
                    ev.envelope_tight_on_sample,
                    ev.nerode_lower_bound
                );
            }
        }
        println!();
    }
}
