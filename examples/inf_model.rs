//! Proposition 3.1 on the infinite structure `IG`: evaluating a chain
//! program on truncations of the complete labeled tree recovers exactly
//! `L(H)`, word for word.
//!
//! ```bash
//! cargo run --example inf_model
//! ```

use selprop_core::chain::ChainProgram;
use selprop_core::inf_model::{check_proposition_3_1, ig_truncation};

fn main() {
    let programs = [
        (
            "ancestors (L = par+)",
            "?- anc(c, Y).\nanc(X, Y) :- par(X, Y).\nanc(X, Y) :- anc(X, Z), par(Z, Y).",
            6,
        ),
        (
            "balanced pairs (L = b1^n b2^n)",
            "?- p(c, Y).\n\
             p(X, Y) :- b1(X, X1), b2(X1, Y).\n\
             p(X, Y) :- b1(X, X1), p(X1, X2), b2(X2, Y).",
            8,
        ),
        (
            "nonlinear par+ (Program C rules)",
            "?- anc(c, Y).\nanc(X, Y) :- par(X, Y).\nanc(X, Y) :- anc(X, Z), anc(Z, Y).",
            5,
        ),
    ];
    for (label, src, depth) in programs {
        let chain = ChainProgram::parse(src).unwrap();
        let (_, trunc) = ig_truncation(&chain, depth);
        let (from_ig, from_grammar, ok) = check_proposition_3_1(&chain, depth);
        let al = chain.grammar().alphabet.clone();
        println!("─── {label}");
        println!(
            "    IG_{depth}: {} nodes, {} edges",
            trunc.nodes.len(),
            trunc.db.num_facts()
        );
        println!(
            "    H(IG_{depth}) = {{ {} }}",
            from_ig
                .iter()
                .map(|w| al.render_word(w))
                .collect::<Vec<_>>()
                .join(", ")
        );
        assert!(ok, "Proposition 3.1 violated");
        println!(
            "    matches L(H) ∩ Σ^≤{depth} from the grammar ({} words) ✓\n",
            from_grammar.len()
        );
    }
}
