//! The live materialization server: N reader threads pin epoch
//! snapshots and query while a writer thread applies a churn stream of
//! batched update rounds — fact inserts, retractions, and a rule
//! hot-swap — to the shared fixpoint.
//!
//! ```bash
//! cargo run --example server
//! ```
//!
//! Every reader asserts two things on every read, so this walkthrough
//! doubles as a smoke test of the server's consistency contract:
//!
//! - **round atomicity** — the observed answer is exactly the answer of
//!   a whole applied-round prefix, precomputed up front by replaying
//!   the same stream single-threadedly (never a mid-round state);
//! - **snapshot pinning** — re-reading a held snapshot returns the same
//!   answer even though the writer has moved on.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use selprop_datalog::db::Tuple;
use selprop_datalog::eval::Strategy;
use selprop_datalog::{parse_program, Database, RuleId, Server, UpdateRound};

/// Rounds in the churn stream (plus the rule drop/re-add rounds).
const ROUNDS: usize = 24;
/// Reader threads racing the writer.
const READERS: usize = 4;

fn main() {
    let mut p = parse_program(
        "?- anc(john, Y).\n\
         anc(X, Y) :- par(X, Y).\n\
         anc(X, Y) :- anc(X, Z), par(Z, Y).",
    )
    .expect("valid program");
    let par = p.symbols.get_predicate("par").unwrap();

    // A parent chain rooted at john; the churn stream grows it in
    // batches and occasionally cuts a suffix back off.
    let names: Vec<_> = (0..=4 * ROUNDS)
        .map(|i| {
            if i == 0 {
                p.symbols.constant("john")
            } else {
                p.symbols.constant(&format!("c{i}"))
            }
        })
        .collect();
    let edge = |i: usize| -> Tuple { vec![names[i], names[i + 1]] };

    // Build the churn stream: alternating grow-by-4 / cut-back-2 rounds.
    // Mixed rounds exercise batched retract+insert in one apply.
    let mut rounds: Vec<UpdateRound> = Vec::new();
    let mut len = 0usize; // edges currently in the chain
    for r in 0..ROUNDS {
        let mut round = UpdateRound::new();
        if r % 3 == 2 {
            // Cut two edges off the tail, then regrow one: one mixed
            // DRed + resume round.
            round = round
                .retract(par, edge(len - 1))
                .retract(par, edge(len - 2))
                .insert(par, edge(len - 2));
            len -= 1;
        } else {
            for _ in 0..4 {
                round = round.insert(par, edge(len));
                len += 1;
            }
        }
        rounds.push(round);
    }

    // The reference answers: answer length after each applied prefix.
    // Epoch e = "the first e rounds applied", so expected[e] is the
    // oracle every concurrent read is checked against.
    let mut expected = vec![0usize];
    let replay = Server::new(&p, Strategy::SemiNaive);
    for round in &rounds {
        replay.apply(round);
        expected.push(replay.answer().len());
    }
    let expected = Arc::new(expected);

    let server = Server::from_database(&p, &Database::new(), Strategy::SemiNaive);
    let done = Arc::new(AtomicBool::new(false));

    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let server = server.clone();
            let expected = Arc::clone(&expected);
            let done = Arc::clone(&done);
            thread::spawn(move || {
                let mut reads = 0usize;
                let mut last_epoch = 0u64;
                while !done.load(Ordering::Acquire) {
                    let snap = server.snapshot();
                    let e = snap.epoch() as usize;
                    let first = snap.answer().len();
                    assert!(
                        e < expected.len() && first == expected[e],
                        "read at epoch {e} saw {first} answers, reference says {}",
                        expected[e.min(expected.len() - 1)]
                    );
                    // The pinned snapshot must not move even if the
                    // writer publishes more rounds in between.
                    assert_eq!(snap.answer().len(), first, "pinned read moved");
                    assert!(snap.epoch() >= last_epoch, "epochs went backwards");
                    last_epoch = snap.epoch();
                    reads += 1;
                }
                reads
            })
        })
        .collect();

    // The writer: apply the stream, pinning one long-lived snapshot
    // mid-stream to prove reclamation never steals a pinned view.
    let mut held = None;
    for (i, round) in rounds.iter().enumerate() {
        server.apply(round);
        if i == ROUNDS / 2 {
            held = Some((server.snapshot(), server.current_epoch()));
        }
    }
    let (held_snap, held_epoch) = held.expect("snapshot pinned mid-stream");
    assert_eq!(held_snap.epoch(), held_epoch);
    assert_eq!(
        held_snap.answer().len(),
        expected[held_epoch as usize],
        "long-lived pinned snapshot must still serve its epoch"
    );

    done.store(true, Ordering::Release);
    let total_reads: usize = readers
        .into_iter()
        .map(|r| r.join().expect("reader thread panicked"))
        .sum();
    println!(
        "{READERS} readers made {total_reads} consistent reads while the writer \
         applied {ROUNDS} rounds (final epoch {})",
        server.current_epoch()
    );

    // Rule hot-swap on the live server: drop the transitive rule, the
    // answer collapses to direct children; re-add it, the full model is
    // restored — the pinned snapshot never moves.
    let full = server.answer().len();
    assert!(server.drop_rule(RuleId(1)), "transitive rule was active");
    let direct = server.answer().len();
    assert!(direct < full, "dropping the closure rule shrinks the answer");
    assert_eq!(held_snap.answer().len(), expected[held_epoch as usize]);
    let readded = server.add_rule(p.rules[1].clone());
    assert_eq!(server.answer().len(), full, "re-added rule restores the model");
    println!(
        "rule hot-swap: {full} answers -> drop closure rule -> {direct} -> re-add \
         (slot {:?}) -> {full}; pinned snapshot at epoch {held_epoch} unmoved",
        readded
    );
}
