//! Incrementally-maintained magic-set query views, served through the
//! epoch server: `Server::query` answers bound goals from a
//! [`selprop_datalog::QueryCache`] of small magic-transformed
//! materializations that share the base store's EDB rows and are kept
//! at fixpoint as update rounds stream in.
//!
//! ```bash
//! cargo run --example query_cache
//! ```
//!
//! The walkthrough is self-asserting — it doubles as a smoke test of
//! the cache's contract:
//!
//! - every cached answer is **bit-identical** to a from-scratch magic
//!   transform of the current EDB (the batch oracle);
//! - one template compile per (predicate, binding pattern), however
//!   many constants instantiate it;
//! - views advance **inside** the writer's rounds, so post-churn
//!   queries are read-path hits;
//! - a pinned snapshot keeps answering as of its pin while the server
//!   moves on;
//! - view memory stays a small fraction of the base store.

use selprop_datalog::ast::{Atom, Term};
use selprop_datalog::db::Tuple;
use selprop_datalog::eval::{answer, Strategy};
use selprop_datalog::magic::magic_transform;
use selprop_datalog::{parse_program, Database, Server};

/// Chain length; the base closure is quadratic in it, the bound views
/// linear.
const N: usize = 160;

fn main() {
    let mut p = parse_program(
        "?- anc(john, Y).\n\
         anc(X, Y) :- par(X, Y).\n\
         anc(X, Y) :- anc(X, Z), par(Z, Y).",
    )
    .expect("valid program");
    let par = p.symbols.get_predicate("par").unwrap();
    let anc = p.symbols.get_predicate("anc").unwrap();

    // A parent chain john -> c1 -> ... -> cN.
    let mut prev = p.symbols.constant("john");
    let mut edges: Vec<Tuple> = Vec::new();
    let mut edb = Database::new();
    for i in 1..=N {
        let c = p.symbols.constant(&format!("c{i}"));
        edges.push(vec![prev, c]);
        edb.insert(par, vec![prev, c]);
        prev = c;
    }
    let server = Server::from_database(&p, &edb, Strategy::SemiNaive);
    let y = p.symbols.variable("QY");
    let mid_consts: Vec<_> = ["c40", "c80", "c120"]
        .iter()
        .map(|name| p.symbols.constant(name))
        .collect();

    // The from-scratch oracle: bake the goal in, magic-transform, run
    // the batch fixpoint over the current EDB.
    let oracle = |goal: &Atom, edb: &Database| -> Vec<Tuple> {
        let mut pg = p.clone();
        pg.goal = goal.clone();
        let m = magic_transform(&pg).expect("transformable");
        answer(&m.program, edb, Strategy::SemiNaive).0.sorted()
    };

    // --- Cold query: builds the view (one template compile). --------
    let goal = p.goal.clone(); // anc(john, Y)
    let got = server.query(&goal).sorted();
    assert_eq!(got.len(), N, "john reaches the whole chain");
    assert_eq!(got, oracle(&goal, &edb), "cold view == batch magic");
    let s = server.cache_stats();
    assert_eq!((s.misses, s.template_compiles), (1, 1));
    println!("cold query:    {:>5} answers, view built", got.len());

    // --- More constants, same binding pattern: template reused. -----
    for &c in &mid_consts {
        let g = Atom::new(anc, vec![Term::Const(c), Term::Var(y)]);
        assert_eq!(server.query(&g).sorted(), oracle(&g, &edb));
    }
    let s = server.cache_stats();
    assert_eq!(s.template_compiles, 1, "one compile per binding pattern");
    assert_eq!((s.views, s.misses), (4, 4));
    println!("3 more consts: template compiles still {}", s.template_compiles);

    // --- Churn rounds: views advance inside the writer's round. -----
    server.retract_facts(par, &edges[99..100]); // cut at c99 -> c100
    for e in &edges[99..100] {
        edb.remove(par, e);
    }
    let hits_before = server.cache_stats().hits;
    let got = server.query(&goal).sorted();
    assert_eq!(got.len(), 99, "chain now stops at c99");
    assert_eq!(got, oracle(&goal, &edb), "post-churn view == batch magic");
    assert!(
        server.cache_stats().hits > hits_before,
        "the round caught the view up: this query was a read-path hit"
    );
    server.insert_facts(par, &edges[99..100]);
    for e in &edges[99..100] {
        edb.insert(par, e.clone());
    }
    assert_eq!(server.query(&goal).sorted(), oracle(&goal, &edb));
    println!("churned twice: answers still oracle-identical, served from cache");

    // --- Snapshot pinning composes with cached queries. -------------
    let pinned = server.snapshot();
    server.retract_facts(par, &edges[..1]); // cut the root
    assert_eq!(server.query(&goal).len(), 0, "current model: root cut");
    assert_eq!(pinned.query(&goal).len(), N, "pinned snapshot: full chain");
    assert_eq!(
        pinned.query(&goal).sorted(),
        pinned.answer().sorted(),
        "pinned view route == pinned base filter"
    );
    drop(pinned);
    server.insert_facts(par, &edges[..1]);
    println!("snapshot:      pinned query answered as of its pin");

    // --- The point of it all: views are small. ----------------------
    let base_words = server.mem_stats().total_words();
    let view_words = server.cache_view_words();
    assert!(
        view_words * 5 < base_words,
        "views ({view_words} words) must stay well under the base ({base_words})"
    );
    println!(
        "memory:        views {view_words} words vs base {base_words} ({:.1}%)",
        100.0 * view_words as f64 / base_words as f64
    );

    let s = server.cache_stats();
    println!(
        "cache stats:   {} hits, {} misses, {} syncs, {} compiles, {} views",
        s.hits, s.misses, s.syncs, s.template_compiles, s.views
    );
    println!("ok: cached magic views stayed oracle-identical through churn");
}
